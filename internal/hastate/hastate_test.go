package hastate

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/journal"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// driver mimics a live head: every table mutation it performs is also
// journaled, exactly as the service layer does, so Replay against a
// mid-stream snapshot must land deep-equal.
type driver struct {
	t      *testing.T
	rng    *rand.Rand
	now    units.Time
	tables *core.HeadState
	// jobs/cjobs mirror Replay's RecoveredJob pair: the durable record and
	// the scheduler-facing job, kept in lockstep.
	jobs   []*JobRecord
	cjobs  map[core.JobID]*core.Job
	nextID core.JobID
	jw     *journal.Writer
	sink   *bytes.Buffer
	// lastAt is the clock of the last journaled record: the freshest
	// instant a replay can possibly reflect.
	lastAt units.Time
}

func newDriver(t *testing.T, seed int64, nodes int) *driver {
	sink := &bytes.Buffer{}
	return &driver{
		t:      t,
		rng:    rand.New(rand.NewSource(seed)),
		tables: core.NewHeadState(nodes, 16*units.MB, core.DefaultCostModel()),
		cjobs:  make(map[core.JobID]*core.Job),
		jw:     journal.NewWriter(sink, 4),
		sink:   sink,
	}
}

func (d *driver) journal(k journal.Kind, job core.JobID, task int, node core.NodeID, body any) {
	var raw []byte
	var err error
	if body != nil {
		raw, err = EncodeBody(body)
	}
	if err != nil {
		d.t.Fatalf("encoding %v body: %v", k, err)
	}
	err = d.jw.Append(journal.Record{
		Kind: k, Job: uint64(job), Task: int32(task), Node: int32(node),
		At: int64(d.now), Body: raw,
	})
	if err != nil {
		d.t.Fatalf("journaling %v: %v", k, err)
	}
	d.lastAt = d.now
}

func (d *driver) upNodes() []core.NodeID {
	var up []core.NodeID
	for k := 0; k < d.tables.Nodes(); k++ {
		if d.tables.Health(core.NodeID(k)) == core.HealthUp {
			up = append(up, core.NodeID(k))
		}
	}
	return up
}

func (d *driver) chunk() volume.ChunkID {
	return volume.ChunkID{Dataset: volume.DatasetID(1 + d.rng.Intn(2)), Index: d.rng.Intn(12)}
}

func (d *driver) admit() {
	d.nextID++
	n := 2 + d.rng.Intn(3)
	rec := &JobRecord{
		ID:      d.nextID,
		Key:     uint64(d.rng.Int63()),
		Class:   core.Class(d.rng.Intn(2)),
		Action:  core.ActionID(d.rng.Intn(4)),
		Tenant:  core.TenantID(d.rng.Intn(3)),
		Dataset: volume.DatasetID(1 + d.rng.Intn(2)),
		Issued:  d.now,
		Req:     []byte{byte(d.nextID), 0xAB},
		Tasks:   make([]TaskInfo, n),
	}
	for i := range rec.Tasks {
		rec.Tasks[i] = TaskInfo{
			Chunk: volume.ChunkID{Dataset: rec.Dataset, Index: i},
			Size:  units.Bytes(1+d.rng.Intn(3)) * units.MB,
		}
	}
	d.jobs = append(d.jobs, rec)
	d.cjobs[rec.ID] = buildJob(rec)
	d.journal(journal.KindAdmit, rec.ID, -1, -1, AdmitBody{Job: *rec})
}

// pickTask returns a random (job, task index) with the task in want state.
func (d *driver) pickTask(want TaskState) (*JobRecord, int) {
	type cand struct {
		rec *JobRecord
		i   int
	}
	var cands []cand
	for _, rec := range d.jobs {
		for i := range rec.Tasks {
			if rec.Tasks[i].State == want {
				cands = append(cands, cand{rec, i})
			}
		}
	}
	if len(cands) == 0 {
		return nil, -1
	}
	c := cands[d.rng.Intn(len(cands))]
	return c.rec, c.i
}

func (d *driver) dispatch() {
	rec, i := d.pickTask(TaskQueued)
	up := d.upNodes()
	if rec == nil || len(up) == 0 {
		return
	}
	node := up[d.rng.Intn(len(up))]
	j := d.cjobs[rec.ID]
	t := &j.Tasks[i]
	t.Assigned = true
	j.Remaining--
	pred := d.tables.CommitAssign(t, node, d.now)
	rec.Tasks[i] = TaskInfo{Chunk: t.Chunk, Size: t.Size, State: TaskAssigned, Node: node, Predicted: pred}
	d.journal(journal.KindDispatch, rec.ID, i, node, DispatchBody{Predicted: pred})
}

func (d *driver) complete() {
	rec, i := d.pickTask(TaskAssigned)
	if rec == nil {
		return
	}
	ti := &rec.Tasks[i]
	j := d.cjobs[rec.ID]
	t := &j.Tasks[i]
	hit := d.rng.Intn(2) == 0
	touch := hit && d.rng.Intn(2) == 0
	exec := t.PredictedExec + units.Duration(d.rng.Intn(5)-2)*units.Millisecond
	if exec <= 0 {
		exec = units.Millisecond
	}
	var evicted []volume.ChunkID
	if res := d.tables.Caches[ti.Node].Resident(); len(res) > 1 && d.rng.Intn(3) == 0 {
		if ev := res[d.rng.Intn(len(res))]; ev != t.Chunk {
			evicted = append(evicted, ev)
		}
	}
	if touch {
		d.tables.DemandTouchPrefetched(t.Chunk, ti.Node)
	}
	d.tables.Correct(core.TaskResult{
		Task: t, Node: ti.Node, Hit: hit, Exec: exec,
		Predicted: t.PredictedExec, Evicted: evicted, Finished: d.now,
	}, d.now)
	d.journal(journal.KindComplete, rec.ID, i, ti.Node,
		CompleteBody{Hit: hit, Touch: touch, Exec: exec, Evicted: evicted})
	ti.State = TaskDone
}

func (d *driver) failJob() {
	var live []*JobRecord
	for _, rec := range d.jobs {
		if !rec.Done() {
			live = append(live, rec)
		}
	}
	if len(live) == 0 {
		return
	}
	rec := live[d.rng.Intn(len(live))]
	for i, r := range d.jobs {
		if r == rec {
			d.jobs = append(d.jobs[:i], d.jobs[i+1:]...)
			break
		}
	}
	delete(d.cjobs, rec.ID)
	d.journal(journal.KindFail, rec.ID, -1, -1, nil)
}

func (d *driver) rehome() {
	up := d.upNodes()
	if len(up) < 2 {
		return
	}
	node := up[d.rng.Intn(len(up))]
	d.tables.MarkFailed(node)
	for _, rec := range d.jobs {
		j := d.cjobs[rec.ID]
		for i := range rec.Tasks {
			ti := &rec.Tasks[i]
			if ti.State == TaskAssigned && ti.Node == node {
				ti.State, ti.Predicted = TaskQueued, 0
				j.Tasks[i].Assigned = false
				j.Tasks[i].PredictedExec = 0
				j.Remaining++
			}
		}
	}
	d.journal(journal.KindRehome, 0, -1, node, nil)
}

func (d *driver) repair() {
	for k := 0; k < d.tables.Nodes(); k++ {
		if d.tables.Health(core.NodeID(k)) == core.HealthDown {
			d.tables.MarkRepaired(core.NodeID(k), d.now)
			d.journal(journal.KindRepair, 0, -1, core.NodeID(k), nil)
			return
		}
	}
}

func (d *driver) suspectOrUp() {
	node := core.NodeID(d.rng.Intn(d.tables.Nodes()))
	if d.rng.Intn(2) == 0 {
		d.tables.MarkSuspect(node)
		d.journal(journal.KindSuspect, 0, -1, node, nil)
	} else {
		d.tables.MarkUp(node)
		d.journal(journal.KindUp, 0, -1, node, nil)
	}
}

func (d *driver) prefetch() {
	up := d.upNodes()
	if len(up) == 0 {
		return
	}
	node := up[d.rng.Intn(len(up))]
	c := d.chunk()
	size := units.Bytes(1+d.rng.Intn(2)) * units.MB
	var evicted []volume.ChunkID
	if res := d.tables.Caches[node].Resident(); len(res) > 0 && d.rng.Intn(4) == 0 {
		if ev := res[d.rng.Intn(len(res))]; ev != c {
			evicted = append(evicted, ev)
		}
	}
	d.tables.MarkPrefetched(c, node, size)
	for _, ev := range evicted {
		d.tables.Caches[node].Remove(ev)
		d.tables.NotePrefetchEvicted(ev, node)
	}
	d.journal(journal.KindPrefetch, 0, -1, node,
		PrefetchBody{Chunk: c, Size: size, Loaded: true, Evicted: evicted})
}

// releaseAndRedispatch mirrors the head's deadline path: the release itself
// is never journaled (it mutates no tables); only the subsequent re-dispatch
// is. Replay must normalize the still-Assigned record back through queued.
func (d *driver) releaseAndRedispatch() {
	rec, i := d.pickTask(TaskAssigned)
	up := d.upNodes()
	if rec == nil || len(up) == 0 {
		return
	}
	j := d.cjobs[rec.ID]
	t := &j.Tasks[i]
	t.Assigned = false
	t.PredictedExec = 0
	j.Remaining++
	node := up[d.rng.Intn(len(up))]
	t.Assigned = true
	j.Remaining--
	pred := d.tables.CommitAssign(t, node, d.now)
	rec.Tasks[i].State, rec.Tasks[i].Node, rec.Tasks[i].Predicted = TaskAssigned, node, pred
	d.journal(journal.KindDispatch, rec.ID, i, node, DispatchBody{Predicted: pred})
}

func (d *driver) step() {
	d.now = d.now.Add(units.Duration(1+d.rng.Intn(4)) * units.Millisecond)
	switch r := d.rng.Intn(20); {
	case r < 4:
		d.admit()
	case r < 9:
		d.dispatch()
	case r < 13:
		d.complete()
	case r < 14:
		d.failJob()
	case r < 15:
		d.rehome()
	case r < 16:
		d.repair()
	case r < 17:
		d.suspectOrUp()
	case r < 19:
		d.prefetch()
	default:
		d.releaseAndRedispatch()
	}
}

func (d *driver) snapshot() *Snapshot {
	s := &Snapshot{At: d.now, NextJobID: d.nextID, Tables: d.tables.Dump()}
	for _, rec := range d.jobs {
		c := *rec
		c.Tasks = slices.Clone(rec.Tasks)
		c.Req = slices.Clone(rec.Req)
		s.Jobs = append(s.Jobs, c)
	}
	return s
}

func TestReplayReconstructsTablesDeepEqual(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		d := newDriver(t, seed, 4)
		for i := 0; i < 150; i++ {
			d.step()
		}
		snap := d.snapshot()
		if err := d.jw.Sync(); err != nil { // drain pre-checkpoint records
			t.Fatalf("seed %d: sync: %v", seed, err)
		}
		d.sink.Reset() // checkpoint taken: truncate the log, as the head does
		for i := 0; i < 250; i++ {
			d.step()
		}
		if err := d.jw.Sync(); err != nil {
			t.Fatalf("seed %d: sync: %v", seed, err)
		}

		records, err := journal.ReadAll(bytes.NewReader(d.sink.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: reading journal: %v", seed, err)
		}
		st, err := Replay(snap, records, d.tables.Model)
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}

		if !reflect.DeepEqual(st.Tables.Dump(), d.tables.Dump()) {
			t.Fatalf("seed %d: replayed tables differ from live tables", seed)
		}
		wantAt := max(snap.At, d.lastAt)
		if st.NextJobID != d.nextID || st.At != wantAt {
			t.Fatalf("seed %d: replayed meta (next=%d at=%v) != live (next=%d at=%v)",
				seed, st.NextJobID, st.At, d.nextID, wantAt)
		}
		if len(st.Jobs) != len(d.jobs) {
			t.Fatalf("seed %d: replayed %d jobs, live has %d", seed, len(st.Jobs), len(d.jobs))
		}
		for i, rj := range st.Jobs {
			want := d.jobs[i]
			if !reflect.DeepEqual(rj.Rec, want) {
				t.Fatalf("seed %d: job %d record differs:\n got %+v\nwant %+v", seed, want.ID, rj.Rec, want)
			}
			cj := d.cjobs[want.ID]
			if rj.Job.Remaining != cj.Remaining {
				t.Fatalf("seed %d: job %d Remaining %d != %d", seed, want.ID, rj.Job.Remaining, cj.Remaining)
			}
			for k := range cj.Tasks {
				if rj.Job.Tasks[k].Assigned != cj.Tasks[k].Assigned ||
					rj.Job.Tasks[k].PredictedExec != cj.Tasks[k].PredictedExec {
					t.Fatalf("seed %d: job %d task %d diverged", seed, want.ID, k)
				}
			}
		}

		// Byte-identical snapshots: the recovered head re-snapshots to the
		// exact bytes the live head would have written.
		liveSnap := d.snapshot()
		liveSnap.At = wantAt // replay can only be as fresh as the last record
		recSnap := &Snapshot{At: st.At, NextJobID: st.NextJobID, Tables: st.Tables.Dump()}
		for _, rj := range st.Jobs {
			recSnap.Jobs = append(recSnap.Jobs, *rj.Rec)
		}
		lb, err1 := liveSnap.Encode()
		rb, err2 := recSnap.Encode()
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: encode: %v / %v", seed, err1, err2)
		}
		if !bytes.Equal(lb, rb) {
			t.Fatalf("seed %d: recovered snapshot bytes differ from live snapshot bytes", seed)
		}
	}
}

func TestSnapshotEncodeDeterministicAndValidated(t *testing.T) {
	d := newDriver(t, 42, 3)
	for i := 0; i < 120; i++ {
		d.step()
	}
	s := d.snapshot()
	a, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot encoding is not deterministic")
	}
	back, err := DecodeSnapshot(a)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatal("decoded snapshot differs from original")
	}

	flip := slices.Clone(a)
	flip[len(flip)/2] ^= 0x40
	if _, err := DecodeSnapshot(flip); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("tampered snapshot decoded: err=%v", err)
	}
	if _, err := DecodeSnapshot(a[:6]); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated snapshot decoded: err=%v", err)
	}
	bad := slices.Clone(a)
	bad[4] = 99 // version
	if _, err := DecodeSnapshot(bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("wrong-version snapshot decoded: err=%v", err)
	}
}

// emptySnap builds a minimal snapshot with n nodes and no jobs.
func emptySnap(n int) *Snapshot {
	h := core.NewHeadState(n, 16*units.MB, core.DefaultCostModel())
	return &Snapshot{Tables: h.Dump()}
}

func mustBody(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := EncodeBody(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestReplayRejectsDivergentPrediction(t *testing.T) {
	snap := emptySnap(2)
	job := JobRecord{ID: 1, Dataset: 1, Tasks: []TaskInfo{
		{Chunk: volume.ChunkID{Dataset: 1, Index: 0}, Size: units.MB},
	}}
	records := []journal.Record{
		{Kind: journal.KindAdmit, Job: 1, Body: mustBody(t, AdmitBody{Job: job})},
		{Kind: journal.KindDispatch, Job: 1, Task: 0, Node: 0,
			Body: mustBody(t, DispatchBody{Predicted: 123})},
	}
	if _, err := Replay(snap, records, core.DefaultCostModel()); err == nil {
		t.Fatal("replay accepted a dispatch whose prediction cannot be reproduced")
	}
}

func TestReplayRejectsBrokenLifecycles(t *testing.T) {
	model := core.DefaultCostModel()
	job := JobRecord{ID: 1, Dataset: 1, Tasks: []TaskInfo{
		{Chunk: volume.ChunkID{Dataset: 1, Index: 0}, Size: units.MB},
	}}
	admit := journal.Record{Kind: journal.KindAdmit, Job: 1, Body: mustBody(t, AdmitBody{Job: job})}
	complete := journal.Record{Kind: journal.KindComplete, Job: 1, Task: 0, Node: 0,
		Body: mustBody(t, CompleteBody{Exec: units.Millisecond})}

	cases := map[string][]journal.Record{
		"unknown job":          {complete},
		"duplicate admit":      {admit, admit},
		"task out of range":    {admit, {Kind: journal.KindComplete, Job: 1, Task: 9, Body: mustBody(t, CompleteBody{Exec: 1})}},
		"duplicate completion": {admit, complete, complete},
	}
	for name, recs := range cases {
		if _, err := Replay(emptySnap(2), recs, model); err == nil {
			t.Errorf("%s: replay accepted a structurally broken journal", name)
		}
	}
}

// TestReplayRecoversReleasedTaskAsAssigned pins the documented semantics of
// a deadline release that was never re-dispatched before the crash: the
// release is not journaled, so the task recovers as TaskAssigned and the
// standby's deadline machinery re-fires for it — the same outcome the lost
// head was heading for, never a lost task.
func TestReplayRecoversReleasedTaskAsAssigned(t *testing.T) {
	d := newDriver(t, 7, 2)
	d.now = units.Time(units.Millisecond)
	d.admit()
	snap := d.snapshot()
	if err := d.jw.Sync(); err != nil {
		t.Fatal(err)
	}
	d.sink.Reset()
	d.dispatch()
	// The live head releases the task (deadline fired) — no journal record.
	rec := d.jobs[0]
	j := d.cjobs[rec.ID]
	var released int = -1
	for i := range rec.Tasks {
		if rec.Tasks[i].State == TaskAssigned {
			released = i
			j.Tasks[i].Assigned = false
			j.Remaining++
			break
		}
	}
	if released < 0 {
		t.Fatal("no task was dispatched")
	}
	if err := d.jw.Sync(); err != nil {
		t.Fatal(err)
	}
	records, err := journal.ReadAll(bytes.NewReader(d.sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(snap, records, d.tables.Model)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Jobs[0].Rec.Tasks[released].State; got != TaskAssigned {
		t.Fatalf("released task recovered as %d, want TaskAssigned", got)
	}
	if !st.Jobs[0].Job.Tasks[released].Assigned {
		t.Fatal("recovered core task lost its Assigned flag")
	}
}
