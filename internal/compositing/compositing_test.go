package compositing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vizsched/internal/img"
)

// randomLayers builds n random premultiplied layers of the given size.
func randomLayers(rng *rand.Rand, n, w, h int) []*img.Image {
	layers := make([]*img.Image, n)
	for i := range layers {
		m := img.New(w, h)
		for p := range m.Pix {
			a := rng.Float32()
			m.Pix[p] = img.RGBA{
				R: rng.Float32() * a,
				G: rng.Float32() * a,
				B: rng.Float32() * a,
				A: a,
			}
		}
		layers[i] = m
	}
	return layers
}

var algorithms = []Algorithm{Serial{}, DirectSend{}, BinarySwap{}, TwoThreeSwap{}}

// Every algorithm must produce the serial reference image, for processor
// counts exercising equal splits, fold-ins, and 2-3 mixes.
func TestAllAlgorithmsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 24, 27} {
		layers := randomLayers(rng, n, 9, 7)
		want, _ := Serial{}.Composite(layers)
		for _, alg := range algorithms[1:] {
			got, _ := alg.Composite(layers)
			if d := img.MaxDiff(want, got); d > 1e-5 {
				t.Errorf("%s with n=%d differs from serial by %v", alg.Name(), n, d)
			}
		}
	}
}

// Compositing must not mutate its inputs: the service reuses node layers.
func TestAlgorithmsDoNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	layers := randomLayers(rng, 5, 6, 6)
	backup := make([]*img.Image, len(layers))
	for i, l := range layers {
		backup[i] = l.Clone()
	}
	for _, alg := range algorithms {
		alg.Composite(layers)
		for i := range layers {
			if img.MaxDiff(layers[i], backup[i]) != 0 {
				t.Fatalf("%s mutated input layer %d", alg.Name(), i)
			}
		}
	}
}

func TestSerialSingleLayerIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layers := randomLayers(rng, 1, 4, 4)
	for _, alg := range algorithms {
		got, _ := alg.Composite(layers)
		if img.MaxDiff(got, layers[0]) > 1e-6 {
			t.Errorf("%s single-layer composite is not identity", alg.Name())
		}
	}
}

func TestEmptyLayersPanics(t *testing.T) {
	for _, alg := range algorithms {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted zero layers", alg.Name())
				}
			}()
			alg.Composite(nil)
		}()
	}
}

func TestMismatchedSizesPanic(t *testing.T) {
	layers := []*img.Image{img.New(4, 4), img.New(5, 4)}
	defer func() {
		if recover() == nil {
			t.Error("mismatched sizes accepted")
		}
	}()
	Serial{}.Composite(layers)
}

func TestBinarySwapStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layers := randomLayers(rng, 8, 16, 16)
	_, st := BinarySwap{}.Composite(layers)
	// 3 swap rounds + 1 gather, no folds.
	if st.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", st.Rounds)
	}
	// Each swap round: 8 procs each send 1 piece (k-1=1 per keeper, 4 keepers
	// per... pairwise: 8 messages per round? Each pair exchanges 2 pieces → 8
	// messages per round across 4 pairs, 3 rounds = 24, plus 7 gather.
	if st.Messages != 24+7 {
		t.Errorf("messages = %d, want 31", st.Messages)
	}
	// Pixel conservation: each swap round moves exactly half the image per
	// pair... total swap pixels = rounds * W*H * (k-1)/k summed; just sanity
	// check it is positive and the gather moved W*H*(n-1)/n pixels.
	if st.PixelsSent <= 0 {
		t.Error("no pixels moved")
	}
	if st.BytesSent() != st.PixelsSent*16 {
		t.Error("BytesSent inconsistent")
	}
}

func TestTwoThreeSwapHandlesTriples(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layers := randomLayers(rng, 9, 12, 12)
	_, st := TwoThreeSwap{}.Composite(layers)
	// 9 = 3*3: two ternary rounds + gather, no folds.
	if st.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", st.Rounds)
	}
	// Binary swap on 9 layers folds one in first (one extra round).
	_, bst := BinarySwap{}.Composite(layers)
	if bst.Rounds != 1+3+1 {
		t.Errorf("binary-swap rounds on 9 layers = %d, want 5", bst.Rounds)
	}
}

// TestSwapFoldInSingleRound pins the parallel fold-in pre-step on awkward
// (non-2^a·3^b) processor counts: folding costs exactly ONE extra round no
// matter how many processors fold, and the excess shows up only in the
// message count. The serial fold this replaced cost one round per excess
// processor (N=100 would have paid 36 fold rounds; it now pays 1).
func TestSwapFoldInSingleRound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct {
		n                   int
		binRounds, ttRounds int
		binExcess, ttExcess int
	}{
		// binary target / 2-3 target: 5→4/4, 7→4/6, 11→8/9, 100→64/96.
		{5, 4, 4, 1, 1},
		{7, 4, 4, 3, 1},
		{11, 5, 4, 3, 2},
		{100, 8, 8, 36, 4},
	}
	for _, c := range cases {
		layers := randomLayers(rng, c.n, 8, 6)
		want, _ := Serial{}.Composite(layers)

		got, st := BinarySwap{}.Composite(layers)
		if d := img.MaxDiff(want, got); d > 1e-5 {
			t.Errorf("binary-swap n=%d differs from serial by %v", c.n, d)
		}
		if st.Rounds != c.binRounds {
			t.Errorf("binary-swap n=%d rounds = %d, want %d", c.n, st.Rounds, c.binRounds)
		}

		got, st2 := TwoThreeSwap{}.Composite(layers)
		if d := img.MaxDiff(want, got); d > 1e-5 {
			t.Errorf("2-3-swap n=%d differs from serial by %v", c.n, d)
		}
		if st2.Rounds != c.ttRounds {
			t.Errorf("2-3-swap n=%d rounds = %d, want %d", c.n, st2.Rounds, c.ttRounds)
		}

		// The fold messages are full-image sends, one per excess processor;
		// they dominate PixelsSent differences, so pin them via the excess.
		full := int64(8 * 6)
		if min := full * int64(c.binExcess); st.PixelsSent < min {
			t.Errorf("binary-swap n=%d moved %d pixels, folds alone need %d", c.n, st.PixelsSent, min)
		}
		if min := full * int64(c.ttExcess); st2.PixelsSent < min {
			t.Errorf("2-3-swap n=%d moved %d pixels, folds alone need %d", c.n, st2.PixelsSent, min)
		}
	}
}

// TestSwapFoldInMessageCounts pins exact message totals for the fold cases
// small enough to count by hand.
func TestSwapFoldInMessageCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	// binary n=5: 1 fold + 2 rounds×4 msgs + 3 gather = 12.
	layers := randomLayers(rng, 5, 4, 4)
	if _, st := (BinarySwap{}).Composite(layers); st.Messages != 12 {
		t.Errorf("binary-swap n=5 messages = %d, want 12", st.Messages)
	}
	// 2-3 n=7: target 6, 1 fold + (k=2: 6) + (k=3: 12) + 5 gather = 24.
	layers = randomLayers(rng, 7, 4, 4)
	if _, st := (TwoThreeSwap{}).Composite(layers); st.Messages != 24 {
		t.Errorf("2-3-swap n=7 messages = %d, want 24", st.Messages)
	}
}

// TestCompositingRoundHelpers keeps the closed-form round counts (used by
// the simulator's cost model) in lock-step with what the algorithms do.
func TestCompositingRoundHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for n := 1; n <= 40; n++ {
		layers := randomLayers(rng, n, 4, 3)
		if _, st := (BinarySwap{}).Composite(layers); st.Rounds != BinarySwapRounds(n) {
			t.Errorf("BinarySwapRounds(%d) = %d, actual %d", n, BinarySwapRounds(n), st.Rounds)
		}
		if _, st := (TwoThreeSwap{}).Composite(layers); st.Rounds != TwoThreeSwapRounds(n) {
			t.Errorf("TwoThreeSwapRounds(%d) = %d, actual %d", n, TwoThreeSwapRounds(n), st.Rounds)
		}
		if _, st := (DirectSend{}).Composite(layers); st.Rounds != DirectSendRounds(n) {
			t.Errorf("DirectSendRounds(%d) = %d, actual %d", n, DirectSendRounds(n), st.Rounds)
		}
	}
}

func TestDirectSendStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layers := randomLayers(rng, 4, 10, 10)
	_, st := DirectSend{}.Composite(layers)
	if st.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", st.Rounds)
	}
	// Exchange: each of 4 owners receives 3 pieces = 12 messages; gather: 3.
	if st.Messages != 15 {
		t.Errorf("messages = %d, want 15", st.Messages)
	}
	// Exchange moves (n-1)/n of the image... n-1 full images' worth of
	// distinct pixels = 3*100; gather moves 3/4*100 = 75.
	if st.PixelsSent != 300+75 {
		t.Errorf("pixels = %d, want 375", st.PixelsSent)
	}
}

// Property: for random layer counts and sizes, swap algorithms agree with
// serial compositing.
func TestQuickSwapMatchesSerial(t *testing.T) {
	f := func(seed int64, rawN, rawW, rawH uint8) bool {
		n := int(rawN%11) + 1
		w := int(rawW%8) + 2
		h := int(rawH%8) + 2
		rng := rand.New(rand.NewSource(seed))
		layers := randomLayers(rng, n, w, h)
		want, _ := Serial{}.Composite(layers)
		for _, alg := range []Algorithm{BinarySwap{}, TwoThreeSwap{}, DirectSend{}} {
			got, _ := alg.Composite(layers)
			if img.MaxDiff(want, got) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGroupSizesFor(t *testing.T) {
	cases := []struct {
		n  int
		ok bool
	}{
		{1, true}, {2, true}, {3, true}, {4, true}, {6, true}, {8, true},
		{9, true}, {12, true}, {5, false}, {7, false}, {10, false}, {25, false},
	}
	for _, c := range cases {
		ks, ok := groupSizesFor(c.n)
		if ok != c.ok {
			t.Errorf("groupSizesFor(%d) ok = %v, want %v", c.n, ok, c.ok)
			continue
		}
		if ok {
			prod := 1
			for _, k := range ks {
				prod *= k
			}
			if prod != c.n {
				t.Errorf("groupSizesFor(%d) product = %d", c.n, prod)
			}
		}
	}
}

func TestLargest23LE(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 3, 5: 4, 7: 6, 10: 9, 11: 9, 13: 12, 17: 16, 100: 96, 64: 64}
	for n, want := range cases {
		if got := largest23LE(n); got != want {
			t.Errorf("largest23LE(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSpanSplitCovers(t *testing.T) {
	s := span{10, 47}
	for k := 1; k <= 7; k++ {
		parts := s.split(k)
		prev := s.Lo
		for _, p := range parts {
			if p.Lo != prev {
				t.Fatalf("k=%d: gap at %d", k, p.Lo)
			}
			prev = p.Hi
		}
		if prev != s.Hi {
			t.Fatalf("k=%d: ends at %d", k, prev)
		}
	}
}

func TestByDepth(t *testing.T) {
	a, b, c := img.New(1, 1), img.New(1, 1), img.New(1, 1)
	got := ByDepth([]*img.Image{a, b, c}, []float64{3, 1, 2})
	if got[0] != b || got[1] != c || got[2] != a {
		t.Error("ByDepth ordered wrong")
	}
}

func TestByDepthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ByDepth([]*img.Image{img.New(1, 1)}, nil)
}

func BenchmarkCompositing64Layers(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	layers := randomLayers(rng, 64, 64, 64)
	for _, alg := range algorithms {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Composite(layers)
			}
		})
	}
}

func TestConcurrentMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 5, 9, 16} {
		layers := randomLayers(rng, n, 11, 7)
		want, _ := Serial{}.Composite(layers)
		for _, workers := range []int{0, 1, 3, 8} {
			got, _ := Concurrent{Workers: workers}.Composite(layers)
			if d := img.MaxDiff(want, got); d > 1e-5 {
				t.Errorf("concurrent(workers=%d, n=%d) differs by %v", workers, n, d)
			}
		}
	}
}

func TestConcurrentDoesNotMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	layers := randomLayers(rng, 6, 8, 8)
	backup := make([]*img.Image, len(layers))
	for i, l := range layers {
		backup[i] = l.Clone()
	}
	Concurrent{}.Composite(layers)
	for i := range layers {
		if img.MaxDiff(layers[i], backup[i]) != 0 {
			t.Fatalf("concurrent mutated input %d", i)
		}
	}
}

// Run with -race in CI: disjoint spans mean no data races by construction;
// this test makes the race detector check that claim.
func TestConcurrentUnderRace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	layers := randomLayers(rng, 12, 32, 32)
	for i := 0; i < 4; i++ {
		Concurrent{Workers: 6}.Composite(layers)
	}
}
