package dfb

import (
	"fmt"

	"vizsched/internal/compositing"
	"vizsched/internal/img"
)

// DFB is the distributed framebuffer as a drop-in compositing.Algorithm:
// layer i plays renderer node i, tiles are owned round-robin, and fragments
// are delivered in a deliberately scrambled (but deterministic) order to
// exercise the out-of-order reduction path. Output is bit-identical to
// Serial.
type DFB struct {
	// Tile is the tile edge in pixels; 0 selects DefaultTileSize.
	Tile int
}

// Name implements compositing.Algorithm.
func (DFB) Name() string { return "dfb" }

// Composite implements compositing.Algorithm.
func (d DFB) Composite(layers []*img.Image) (*img.Image, compositing.Stats) {
	if len(layers) == 0 {
		panic("dfb: no layers")
	}
	w, h := layers[0].W, layers[0].H
	for i, l := range layers {
		if l.W != w || l.H != h {
			panic(fmt.Sprintf("dfb: layer %d is %dx%d, want %dx%d", i, l.W, l.H, w, h))
		}
	}
	n := len(layers)
	layout := NewLayout(w, h, d.Tile)
	out := img.New(w, h)
	red := NewReducer(layout, n, out)

	var st compositing.Stats
	// One asynchronous push step plus the gather of finalized tiles — never
	// a function of n, which is the whole point.
	st.Rounds = 2
	for t := 0; t < layout.NumTiles(); t++ {
		owner := layout.Owner(t, n)
		x0, y0, x1, y1 := layout.Bounds(t)
		tilePix := int64((x1 - x0) * (y1 - y0))
		for j := 0; j < n; j++ {
			// Scrambled arrival order: start each tile's deliveries at a
			// different layer so the reducer's suffix buffering is exercised
			// on every run, deterministically.
			i := (t + j) % n
			fin, err := red.Add(Fragment{Tile: t, Rank: i, Depth: float64(i), Seq: i, Pix: ExtractTile(layout, layers[i], t)})
			if err != nil {
				panic(err)
			}
			if i != owner {
				st.Messages++
				st.PixelsSent += tilePix
			}
			if fin && owner != 0 {
				// Finalized tile ships to the display (rank 0).
				st.Messages++
				st.PixelsSent += tilePix
			}
		}
	}
	if !red.Done() {
		panic("dfb: reduction incomplete")
	}
	return out, st
}

// AlgorithmByName resolves a compositing algorithm from its experiment
// name, including dfb. It lives here rather than in package compositing
// because dfb imports compositing and the registry must see both.
func AlgorithmByName(name string) (compositing.Algorithm, error) {
	switch name {
	case "serial":
		return compositing.Serial{}, nil
	case "direct-send":
		return compositing.DirectSend{}, nil
	case "binary-swap":
		return compositing.BinarySwap{}, nil
	case "2-3-swap":
		return compositing.TwoThreeSwap{}, nil
	case "dfb":
		return DFB{}, nil
	default:
		return nil, fmt.Errorf("dfb: unknown compositing algorithm %q", name)
	}
}
