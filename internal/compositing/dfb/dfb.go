// Package dfb implements a tile-owner distributed framebuffer compositor in
// the style of Usher et al.'s Distributed FrameBuffer (arXiv:2305.07083): the
// image is split into fixed tiles, each tile is owned by exactly one node
// (deterministic round-robin over the alive nodes), renderers push per-tile
// fragments to owners as messages, and owners reduce fragments front-to-back
// the moment they arrive — a tile finalizes as soon as its expected fragment
// count is met, with no inter-node rounds and no global barrier.
//
// Determinism argument: premultiplied "over" is associative but NOT
// commutative, so an arrival-order reduction would not be bit-stable. The
// Reducer therefore never applies a fragment out of depth order. When depth
// ranks are known it composites only the contiguous back suffix (buffering
// out-of-order arrivals until their successor rank has landed); when ranks
// are unknown it buffers the tile and reduces once the count is met, after a
// stable (Depth, Seq) sort. Both schedules perform exactly the float
// operations Serial performs on that tile's pixels, so the output is
// bit-identical to Serial regardless of arrival order or thread interleaving.
package dfb

import (
	"cmp"
	"fmt"
	"slices"
	"sync"

	"vizsched/internal/img"
)

// DefaultTileSize is the tile edge used when a caller passes 0.
const DefaultTileSize = 64

// Layout is a fixed tiling of a W×H frame into square tiles of edge Tile
// (edge tiles clip to the frame). Tiles are indexed row-major.
type Layout struct {
	W, H, Tile int
	tx, ty     int
}

// NewLayout builds the tiling for a frame. tile <= 0 selects
// DefaultTileSize.
func NewLayout(w, h, tile int) Layout {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("dfb: invalid frame %dx%d", w, h))
	}
	if tile <= 0 {
		tile = DefaultTileSize
	}
	return Layout{
		W: w, H: h, Tile: tile,
		tx: (w + tile - 1) / tile,
		ty: (h + tile - 1) / tile,
	}
}

// NumTiles returns the tile count.
func (l Layout) NumTiles() int { return l.tx * l.ty }

// Bounds returns the pixel rectangle [x0,x1)×[y0,y1) of tile t.
func (l Layout) Bounds(t int) (x0, y0, x1, y1 int) {
	if t < 0 || t >= l.NumTiles() {
		panic(fmt.Sprintf("dfb: tile %d out of range (have %d)", t, l.NumTiles()))
	}
	x0 = (t % l.tx) * l.Tile
	y0 = (t / l.tx) * l.Tile
	x1 = min(x0+l.Tile, l.W)
	y1 = min(y0+l.Tile, l.H)
	return
}

// Owner returns which of n alive nodes owns tile t: a deterministic
// round-robin, so every participant computes the same assignment with no
// coordination and ownership re-homes automatically when n changes.
func (l Layout) Owner(t, n int) int {
	if n <= 0 {
		panic("dfb: no alive nodes")
	}
	return t % n
}

// ExtractTile copies tile t of a full-frame layer into a tile-local
// row-major pixel run — the payload a renderer pushes to the tile's owner.
func ExtractTile(l Layout, m *img.Image, t int) []img.RGBA {
	if m.W != l.W || m.H != l.H {
		panic(fmt.Sprintf("dfb: layer %dx%d does not match layout %dx%d", m.W, m.H, l.W, l.H))
	}
	x0, y0, x1, y1 := l.Bounds(t)
	out := make([]img.RGBA, 0, (x1-x0)*(y1-y0))
	for y := y0; y < y1; y++ {
		out = append(out, m.Pix[y*l.W+x0:y*l.W+x1]...)
	}
	return out
}

// Fragment is one renderer's contribution to one tile.
type Fragment struct {
	// Frame is the frame sequence number (pipelining keys reducers by it).
	Frame int
	// Tile indexes the layout.
	Tile int
	// Rank is the fragment's front-to-back position among the tile's
	// expected fragments, or -1 when ranks are not known at the sender
	// (the live service sorts by Depth/Seq at finalize instead).
	Rank int
	// Depth orders fragments front-to-back when Rank is -1.
	Depth float64
	// Seq breaks Depth ties stably (the task index in the live service).
	Seq int
	// Pix is the tile-local pixel run (see ExtractTile).
	Pix []img.RGBA
}

// tileState tracks one tile's in-progress reduction.
type tileState struct {
	got  int
	done bool
	// acc is the composite of the contiguous back suffix [nextBack, expect)
	// in eager (ranked) mode.
	acc      []img.RGBA
	nextBack int
	// pending buffers ranked fragments that arrived ahead of their
	// back-neighbor.
	pending map[int][]img.RGBA
	// buffered holds unranked fragments until the count is met.
	buffered []Fragment
	// seen dedupes retried senders (by Rank, or by Seq when unranked).
	seen map[int]bool
}

// Reducer reduces tile fragments into an output frame as they arrive. It is
// safe for concurrent Add calls; the result is bit-identical to Serial no
// matter the arrival order (see the package comment).
type Reducer struct {
	layout Layout
	expect int
	out    *img.Image

	mu        sync.Mutex
	tiles     []*tileState
	finalized int
	frags     int
}

// NewReducer prepares a reduction of expect fragments per tile into out,
// which must match the layout's frame size.
func NewReducer(layout Layout, expect int, out *img.Image) *Reducer {
	if out.W != layout.W || out.H != layout.H {
		panic("dfb: output image does not match layout")
	}
	if expect <= 0 {
		panic("dfb: expect must be positive")
	}
	tiles := make([]*tileState, layout.NumTiles())
	for i := range tiles {
		tiles[i] = &tileState{nextBack: expect, pending: map[int][]img.RGBA{}, seen: map[int]bool{}}
	}
	return &Reducer{layout: layout, expect: expect, out: out, tiles: tiles}
}

// Add folds one fragment in and reports whether it completed its tile.
// Duplicate fragments (a retried sender) are ignored. Ranked and unranked
// fragments must not be mixed within one tile.
func (r *Reducer) Add(f Fragment) (finalized bool, err error) {
	if f.Tile < 0 || f.Tile >= len(r.tiles) {
		return false, fmt.Errorf("dfb: tile %d out of range (have %d)", f.Tile, len(r.tiles))
	}
	x0, y0, x1, y1 := r.layout.Bounds(f.Tile)
	if want := (x1 - x0) * (y1 - y0); len(f.Pix) != want {
		return false, fmt.Errorf("dfb: tile %d fragment has %d pixels, want %d", f.Tile, len(f.Pix), want)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := r.tiles[f.Tile]
	if ts.done {
		return false, nil
	}
	key := f.Rank
	if f.Rank < 0 {
		key = f.Seq
	}
	if ts.seen[key] {
		return false, nil
	}
	ts.seen[key] = true
	ts.got++
	r.frags++

	if f.Rank >= 0 {
		if f.Rank >= r.expect {
			return false, fmt.Errorf("dfb: tile %d fragment rank %d out of range (expect %d)", f.Tile, f.Rank, r.expect)
		}
		// Eager mode: extend the contiguous back suffix, draining any
		// buffered predecessors that are now in order.
		ts.pending[f.Rank] = f.Pix
		for {
			pix, ok := ts.pending[ts.nextBack-1]
			if !ok {
				break
			}
			delete(ts.pending, ts.nextBack-1)
			ts.nextBack--
			if ts.acc == nil {
				ts.acc = append([]img.RGBA(nil), pix...)
			} else {
				// pix is in front of everything accumulated so far.
				for i := range ts.acc {
					ts.acc[i] = pix[i].Over(ts.acc[i])
				}
			}
		}
		if ts.nextBack == 0 && ts.got == r.expect {
			r.finishLocked(f.Tile, ts)
			return true, nil
		}
		return false, nil
	}

	// Unranked mode: buffer until the count is met, then reduce after a
	// stable front-to-back sort — the exact schedule ByDepth+Serial runs.
	ts.buffered = append(ts.buffered, f)
	if ts.got < r.expect {
		return false, nil
	}
	slices.SortStableFunc(ts.buffered, func(a, b Fragment) int {
		if c := cmp.Compare(a.Depth, b.Depth); c != 0 {
			return c
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
	ts.acc = append([]img.RGBA(nil), ts.buffered[len(ts.buffered)-1].Pix...)
	for i := len(ts.buffered) - 2; i >= 0; i-- {
		front := ts.buffered[i].Pix
		for j := range ts.acc {
			ts.acc[j] = front[j].Over(ts.acc[j])
		}
	}
	ts.buffered = nil
	r.finishLocked(f.Tile, ts)
	return true, nil
}

// finishLocked writes a completed tile into the output frame.
func (r *Reducer) finishLocked(t int, ts *tileState) {
	x0, y0, x1, y1 := r.layout.Bounds(t)
	w := x1 - x0
	for y := y0; y < y1; y++ {
		copy(r.out.Pix[y*r.layout.W+x0:y*r.layout.W+x1], ts.acc[(y-y0)*w:(y-y0+1)*w])
	}
	ts.acc = nil
	ts.done = true
	r.finalized++
}

// Done reports whether every tile has finalized.
func (r *Reducer) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finalized == len(r.tiles)
}

// TilesFinalized returns how many tiles have completed.
func (r *Reducer) TilesFinalized() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finalized
}

// Fragments returns how many fragments have been folded in.
func (r *Reducer) Fragments() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frags
}
