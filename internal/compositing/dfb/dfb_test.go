package dfb

import (
	"math/rand"
	"sync"
	"testing"

	"vizsched/internal/compositing"
	"vizsched/internal/img"
)

// layer builds a deterministic pseudo-random premultiplied layer.
func layer(w, h int, seed int64) *img.Image {
	rng := rand.New(rand.NewSource(seed))
	m := img.New(w, h)
	for i := range m.Pix {
		a := rng.Float32()
		m.Pix[i] = img.RGBA{R: rng.Float32() * a, G: rng.Float32() * a, B: rng.Float32() * a, A: a}
	}
	return m
}

func layers(w, h, n int, seed int64) []*img.Image {
	ls := make([]*img.Image, n)
	for i := range ls {
		ls[i] = layer(w, h, seed+int64(i))
	}
	return ls
}

func serialRef(ls []*img.Image) *img.Image {
	ref, _ := compositing.Serial{}.Composite(ls)
	return ref
}

func TestTileLayoutCoversFrame(t *testing.T) {
	for _, c := range []struct{ w, h, tile int }{{64, 64, 16}, {100, 70, 32}, {33, 65, 16}, {5, 5, 64}} {
		l := NewLayout(c.w, c.h, c.tile)
		covered := make([]int, c.w*c.h)
		for tl := 0; tl < l.NumTiles(); tl++ {
			x0, y0, x1, y1 := l.Bounds(tl)
			if x0 >= x1 || y0 >= y1 {
				t.Fatalf("%dx%d/%d tile %d empty: %d,%d,%d,%d", c.w, c.h, c.tile, tl, x0, y0, x1, y1)
			}
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					covered[y*c.w+x]++
				}
			}
		}
		for i, n := range covered {
			if n != 1 {
				t.Fatalf("%dx%d/%d pixel %d covered %d times", c.w, c.h, c.tile, i, n)
			}
		}
	}
}

func TestTileOwnerRoundRobin(t *testing.T) {
	l := NewLayout(128, 128, 16) // 64 tiles
	counts := make([]int, 5)
	for tl := 0; tl < l.NumTiles(); tl++ {
		counts[l.Owner(tl, 5)]++
	}
	for n, c := range counts {
		if c == 0 {
			t.Fatalf("node %d owns no tiles", n)
		}
	}
	if l.Owner(7, 5) != 2 {
		t.Fatalf("owner not deterministic round-robin: %d", l.Owner(7, 5))
	}
}

// TestDFBReducerBitIdenticalAnyOrder drives the ranked reducer with many
// random arrival permutations; every one must reproduce Serial exactly —
// MaxDiff == 0, not within-tolerance.
func TestDFBReducerBitIdenticalAnyOrder(t *testing.T) {
	const w, h, n = 48, 40, 7
	ls := layers(w, h, n, 1)
	ref := serialRef(ls)
	layout := NewLayout(w, h, 16)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		out := img.New(w, h)
		red := NewReducer(layout, n, out)
		type item struct{ tile, layer int }
		var order []item
		for tl := 0; tl < layout.NumTiles(); tl++ {
			for i := 0; i < n; i++ {
				order = append(order, item{tl, i})
			}
		}
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, it := range order {
			if _, err := red.Add(Fragment{Tile: it.tile, Rank: it.layer, Pix: ExtractTile(layout, ls[it.layer], it.tile)}); err != nil {
				t.Fatal(err)
			}
		}
		if !red.Done() {
			t.Fatal("reducer not done after all fragments")
		}
		if d := img.MaxDiff(ref, out); d != 0 {
			t.Fatalf("trial %d: not bit-identical to serial: MaxDiff=%g", trial, d)
		}
	}
}

// TestDFBReducerUnrankedMatchesDepthSort exercises the live-service mode:
// no ranks, fragments carry depths (with ties) and sequence numbers.
func TestDFBReducerUnrankedMatchesDepthSort(t *testing.T) {
	const w, h, n = 32, 32, 6
	ls := layers(w, h, n, 3)
	depths := []float64{3, 1, 2, 1, 5, 2} // ties exercise the stable Seq tiebreak
	ordered := compositing.ByDepth(ls, depths)
	ref := serialRef(ordered)

	layout := NewLayout(w, h, 16)
	out := img.New(w, h)
	red := NewReducer(layout, n, out)
	rng := rand.New(rand.NewSource(4))
	for tl := 0; tl < layout.NumTiles(); tl++ {
		perm := rng.Perm(n)
		for _, i := range perm {
			if _, err := red.Add(Fragment{Tile: tl, Rank: -1, Depth: depths[i], Seq: i, Pix: ExtractTile(layout, ls[i], tl)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !red.Done() {
		t.Fatal("reducer not done")
	}
	if d := img.MaxDiff(ref, out); d != 0 {
		t.Fatalf("unranked reduce not bit-identical to depth-sorted serial: MaxDiff=%g", d)
	}
}

func TestDFBReducerIgnoresDuplicates(t *testing.T) {
	const w, h, n = 16, 16, 3
	ls := layers(w, h, n, 5)
	ref := serialRef(ls)
	layout := NewLayout(w, h, 16)
	out := img.New(w, h)
	red := NewReducer(layout, n, out)
	for i := 0; i < n; i++ {
		red.Add(Fragment{Tile: 0, Rank: i, Pix: ExtractTile(layout, ls[i], 0)})
		// A retried sender re-pushes the same fragment.
		red.Add(Fragment{Tile: 0, Rank: i, Pix: ExtractTile(layout, ls[i], 0)})
	}
	if !red.Done() {
		t.Fatal("reducer not done")
	}
	if d := img.MaxDiff(ref, out); d != 0 {
		t.Fatalf("duplicates corrupted the reduction: MaxDiff=%g", d)
	}
	if red.Fragments() != n {
		t.Fatalf("duplicates counted: got %d fragments, want %d", red.Fragments(), n)
	}
}

func TestDFBReducerRejectsBadFragments(t *testing.T) {
	layout := NewLayout(32, 32, 16)
	red := NewReducer(layout, 2, img.New(32, 32))
	if _, err := red.Add(Fragment{Tile: 99, Rank: 0}); err == nil {
		t.Error("out-of-range tile accepted")
	}
	if _, err := red.Add(Fragment{Tile: 0, Rank: 0, Pix: make([]img.RGBA, 3)}); err == nil {
		t.Error("wrong-size fragment accepted")
	}
	if _, err := red.Add(Fragment{Tile: 0, Rank: 5, Pix: make([]img.RGBA, 256)}); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

// TestDFBConcurrentTileReduction hammers one reducer from many goroutines —
// the -race stress test for concurrent tile reduction. The result must
// still be bit-identical to Serial.
func TestDFBConcurrentTileReduction(t *testing.T) {
	const w, h, n, senders = 64, 64, 16, 8
	ls := layers(w, h, n, 6)
	ref := serialRef(ls)
	layout := NewLayout(w, h, 16)
	out := img.New(w, h)
	red := NewReducer(layout, n, out)

	// Each sender delivers a disjoint slice of layers for every tile, in
	// its own order: heavy lock contention and maximal out-of-order-ness.
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + s)))
			tiles := rng.Perm(layout.NumTiles())
			for _, tl := range tiles {
				for i := s; i < n; i += senders {
					if _, err := red.Add(Fragment{Tile: tl, Rank: i, Pix: ExtractTile(layout, ls[i], tl)}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if !red.Done() {
		t.Fatal("reducer not done")
	}
	if got := red.TilesFinalized(); got != layout.NumTiles() {
		t.Fatalf("TilesFinalized=%d want %d", got, layout.NumTiles())
	}
	if d := img.MaxDiff(ref, out); d != 0 {
		t.Fatalf("concurrent reduction not bit-identical: MaxDiff=%g", d)
	}
}

// TestDFBAlgorithmMatchesSerial is the drop-in Algorithm's pixel-identity
// guarantee across awkward processor counts, including non-2^a·3^b ones.
func TestDFBAlgorithmMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 8, 11, 16, 27} {
		ls := layers(40, 36, n, int64(10+n))
		ref := serialRef(ls)
		out, st := (DFB{Tile: 16}).Composite(ls)
		if d := img.MaxDiff(ref, out); d != 0 {
			t.Fatalf("n=%d: dfb not bit-identical to serial: MaxDiff=%g", n, d)
		}
		if st.Rounds != 2 {
			t.Fatalf("n=%d: dfb Rounds=%d, want 2 (push+gather, independent of n)", n, st.Rounds)
		}
		if n > 1 && st.Messages == 0 {
			t.Fatalf("n=%d: no messages accounted", n)
		}
	}
}

func TestDFBAlgorithmByName(t *testing.T) {
	for _, name := range []string{"serial", "direct-send", "binary-swap", "2-3-swap", "dfb"} {
		alg, err := AlgorithmByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if alg.Name() != name {
			t.Fatalf("AlgorithmByName(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := AlgorithmByName("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
