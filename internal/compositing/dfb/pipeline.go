package dfb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vizsched/internal/img"
	"vizsched/internal/transport"
)

// Params configure a pipelined distributed-framebuffer run.
type Params struct {
	// Nodes is the renderer count; node i contributes the i-th
	// front-to-back layer of every frame.
	Nodes int
	// Tile is the tile edge in pixels (0 = DefaultTileSize).
	Tile int
	// Window bounds how many frames may be in flight at once, so frame f+1
	// renders while frame f is still compositing or delivering. 0 selects 2.
	Window int
	// Dead marks failed nodes: a dead node renders nothing and owns no
	// tiles; ownership re-homes over the survivors.
	Dead []bool
	// Delay, if set, stalls a node's render — straggler injection.
	Delay func(node, frame int) time.Duration
}

// RunStats summarizes a pipeline run.
type RunStats struct {
	// TilesFinalized counts tile completions across all frames.
	TilesFinalized int64
	// FragmentsSent counts tile fragments that crossed the transport
	// (self-owned tiles are delivered locally).
	FragmentsSent int64
	// MaxInFlight is the peak number of frames simultaneously in flight;
	// it never exceeds Window.
	MaxInFlight int64
}

// tileFragBody is the KindTileFrag payload.
type tileFragBody struct {
	Frame, Tile, Rank int
	Pix               []img.RGBA
}

// tileDoneBody is the KindTileDone payload.
type tileDoneBody struct {
	Frame, Tile int
	Pix         []img.RGBA
}

// ownerFrame is one frame's reduction state on one owner node.
type ownerFrame struct {
	out  *img.Image
	red  *Reducer
	done int
}

// Run drives frames through the distributed framebuffer: every alive node
// renders its layer for each frame (render(node, frame), front-to-back by
// node index), splits it into tiles, and pushes each tile to its owner as a
// KindTileFrag message; owners reduce fragments as they arrive and ship
// finalized tiles to the display as KindTileDone messages. There is no
// global barrier anywhere — a tile finalizes the moment its last fragment
// lands, and the bounded window overlaps consecutive frames.
//
// Run returns the assembled frames, which are bit-identical to compositing
// the same layers with Serial.
func Run(p Params, w, h, frames int, render func(node, frame int) *img.Image) ([]*img.Image, RunStats, error) {
	if p.Nodes <= 0 {
		return nil, RunStats{}, fmt.Errorf("dfb: need at least one node")
	}
	window := p.Window
	if window <= 0 {
		window = 2
	}
	var alive []int
	for i := 0; i < p.Nodes; i++ {
		if i < len(p.Dead) && p.Dead[i] {
			continue
		}
		alive = append(alive, i)
	}
	if len(alive) == 0 {
		return nil, RunStats{}, fmt.Errorf("dfb: all nodes dead")
	}
	layout := NewLayout(w, h, p.Tile)
	rank := make(map[int]int, len(alive)) // node -> front-to-back rank among alive
	for r, n := range alive {
		rank[n] = r
	}
	ownerOf := func(t int) int { return alive[layout.Owner(t, len(alive))] }
	ownedTiles := make(map[int]int, len(alive)) // node -> tiles it owns
	for t := 0; t < layout.NumTiles(); t++ {
		ownedTiles[ownerOf(t)]++
	}

	var st RunStats
	var firstErr atomic.Value
	var teardown func()
	// fail records the first error and tears the wiring down so every
	// goroutine blocked on a Send or Recv unblocks with ErrClosed.
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, error(err))
		teardown()
	}

	// Wiring: a full mesh among alive nodes for fragment pushes, plus a
	// star from every node to the display for finalized tiles.
	conns := make([][]transport.Conn, p.Nodes)
	for i := range conns {
		conns[i] = make([]transport.Conn, p.Nodes)
	}
	var allConns []transport.Conn
	for ai, i := range alive {
		for _, j := range alive[ai+1:] {
			a, b := transport.Pipe()
			conns[i][j], conns[j][i] = a, b
			allConns = append(allConns, a, b)
		}
	}
	toDisplay := make([]transport.Conn, p.Nodes)
	var displayEnds []transport.Conn
	for _, i := range alive {
		a, b := transport.Pipe()
		toDisplay[i] = a
		displayEnds = append(displayEnds, b)
		allConns = append(allConns, a, b)
	}
	var teardownOnce sync.Once
	teardown = func() {
		teardownOnce.Do(func() {
			for _, c := range allConns {
				c.Close()
			}
		})
	}

	// Frame admission: the window semaphore is acquired at launch and
	// released by the display when the frame is fully assembled.
	sem := make(chan struct{}, window)
	var launched, completed atomic.Int64
	frameStart := make(map[int]chan int, len(alive))
	for _, i := range alive {
		frameStart[i] = make(chan int, window)
	}
	go func() {
		for f := 0; f < frames; f++ {
			sem <- struct{}{}
			in := launched.Add(1) - completed.Load()
			for {
				cur := atomic.LoadInt64(&st.MaxInFlight)
				if in <= cur || atomic.CompareAndSwapInt64(&st.MaxInFlight, cur, in) {
					break
				}
			}
			for _, i := range alive {
				frameStart[i] <- f
			}
		}
		for _, i := range alive {
			close(frameStart[i])
		}
	}()

	var renderWG, ownerWG sync.WaitGroup
	for _, node := range alive {
		node := node
		// Per-node inbox merging every peer connection plus local
		// self-deliveries from this node's own renderer.
		inbox := make(chan transport.Message, 256)
		var feeders sync.WaitGroup
		for _, peer := range alive {
			if peer == node {
				continue
			}
			c := conns[node][peer]
			feeders.Add(1)
			go func() {
				defer feeders.Done()
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					inbox <- m
				}
			}()
		}

		// Renderer: render, tile, push. Fragments for self-owned tiles
		// bypass the wire and land directly in the inbox.
		feeders.Add(1)
		renderWG.Add(1)
		go func() {
			defer feeders.Done()
			defer renderWG.Done()
			for f := range frameStart[node] {
				if p.Delay != nil {
					if d := p.Delay(node, f); d > 0 {
						time.Sleep(d)
					}
				}
				layer := render(node, f)
				for t := 0; t < layout.NumTiles(); t++ {
					body, err := transport.Encode(tileFragBody{Frame: f, Tile: t, Rank: rank[node], Pix: ExtractTile(layout, layer, t)})
					if err != nil {
						fail(err)
						return
					}
					msg := transport.Message{Kind: transport.KindTileFrag, Body: body}
					if owner := ownerOf(t); owner == node {
						inbox <- msg
					} else {
						atomic.AddInt64(&st.FragmentsSent, 1)
						if err := conns[node][owner].Send(msg); err != nil {
							fail(err)
							return
						}
					}
				}
			}
		}()

		// Close the inbox once the renderer and every peer reader are done
		// (readers exit when Run tears the connections down).
		go func() {
			feeders.Wait()
			close(inbox)
		}()

		// Owner: reduce arriving fragments; a finalized tile ships to the
		// display immediately.
		ownerWG.Add(1)
		go func() {
			defer ownerWG.Done()
			inFlight := make(map[int]*ownerFrame)
			for m := range inbox {
				var body tileFragBody
				if err := transport.Decode(m.Body, &body); err != nil {
					fail(err)
					return
				}
				of := inFlight[body.Frame]
				if of == nil {
					of = &ownerFrame{out: img.New(w, h)}
					of.red = NewReducer(layout, len(alive), of.out)
					inFlight[body.Frame] = of
				}
				fin, err := of.red.Add(Fragment{Frame: body.Frame, Tile: body.Tile, Rank: body.Rank, Pix: body.Pix})
				if err != nil {
					fail(err)
					return
				}
				if !fin {
					continue
				}
				atomic.AddInt64(&st.TilesFinalized, 1)
				done, err := transport.Encode(tileDoneBody{Frame: body.Frame, Tile: body.Tile, Pix: ExtractTile(layout, of.out, body.Tile)})
				if err != nil {
					fail(err)
					return
				}
				if err := toDisplay[node].Send(transport.Message{Kind: transport.KindTileDone, Body: done}); err != nil {
					fail(err)
					return
				}
				if of.done++; of.done == ownedTiles[node] {
					delete(inFlight, body.Frame)
				}
			}
		}()
	}

	// Display: assemble frames from finalized tiles; a completed frame
	// releases one window slot.
	outs := make([]*img.Image, frames)
	allDone := make(chan struct{})
	displayInbox := make(chan transport.Message, 256)
	var displayFeeders sync.WaitGroup
	for _, c := range displayEnds {
		c := c
		displayFeeders.Add(1)
		go func() {
			defer displayFeeders.Done()
			for {
				m, err := c.Recv()
				if err != nil {
					return
				}
				displayInbox <- m
			}
		}()
	}
	go func() { displayFeeders.Wait(); close(displayInbox) }()
	go func() {
		defer close(allDone)
		got := make(map[int]int, frames)
		assembled := 0
		for assembled < frames {
			m, ok := <-displayInbox
			if !ok {
				fail(fmt.Errorf("dfb: display starved with %d/%d frames assembled", assembled, frames))
				return
			}
			var body tileDoneBody
			if err := transport.Decode(m.Body, &body); err != nil {
				fail(err)
				return
			}
			if outs[body.Frame] == nil {
				outs[body.Frame] = img.New(w, h)
			}
			x0, y0, x1, y1 := layout.Bounds(body.Tile)
			tw := x1 - x0
			for y := y0; y < y1; y++ {
				copy(outs[body.Frame].Pix[y*w+x0:y*w+x1], body.Pix[(y-y0)*tw:(y-y0+1)*tw])
			}
			if got[body.Frame]++; got[body.Frame] == layout.NumTiles() {
				assembled++
				completed.Add(1)
				<-sem
			}
		}
	}()

	renderWG.Wait() // all renderers finished pushing
	<-allDone       // display assembled every frame (or starved on error)
	teardown()      // unblocks peer readers, which drains owners out
	ownerWG.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, st, err
	}
	return outs, st, nil
}
