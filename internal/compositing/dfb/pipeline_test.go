package dfb

import (
	"testing"
	"time"

	"vizsched/internal/img"
)

// pipelineRender is a deterministic per-(node, frame) layer producer.
func pipelineRender(w, h int) func(node, frame int) *img.Image {
	return func(node, frame int) *img.Image {
		return layer(w, h, int64(1000*frame+node))
	}
}

// refFrames composites each frame's layers serially for comparison.
func refFrames(w, h, nodes, frames int, dead []bool) []*img.Image {
	render := pipelineRender(w, h)
	outs := make([]*img.Image, frames)
	for f := 0; f < frames; f++ {
		var ls []*img.Image
		for n := 0; n < nodes; n++ {
			if n < len(dead) && dead[n] {
				continue
			}
			ls = append(ls, render(n, f))
		}
		outs[f] = serialRef(ls)
	}
	return outs
}

func TestDFBPipelineMatchesSerial(t *testing.T) {
	const w, h, nodes, frames = 48, 40, 5, 4
	outs, st, err := Run(Params{Nodes: nodes, Tile: 16, Window: 2}, w, h, frames, pipelineRender(w, h))
	if err != nil {
		t.Fatal(err)
	}
	refs := refFrames(w, h, nodes, frames, nil)
	for f := range outs {
		if d := img.MaxDiff(refs[f], outs[f]); d != 0 {
			t.Fatalf("frame %d not bit-identical to serial: MaxDiff=%g", f, d)
		}
	}
	layout := NewLayout(w, h, 16)
	if st.TilesFinalized != int64(layout.NumTiles()*frames) {
		t.Fatalf("TilesFinalized=%d want %d", st.TilesFinalized, layout.NumTiles()*frames)
	}
	if st.MaxInFlight > 2 {
		t.Fatalf("window violated: %d frames in flight", st.MaxInFlight)
	}
	if st.FragmentsSent == 0 {
		t.Fatal("no fragments crossed the transport")
	}
}

// TestDFBPipelineStragglerStaysExact injects one slow node: latency is the
// straggler's problem, correctness must not be.
func TestDFBPipelineStragglerStaysExact(t *testing.T) {
	const w, h, nodes, frames = 32, 32, 4, 3
	delay := func(node, frame int) time.Duration {
		if node == 1 {
			return 3 * time.Millisecond
		}
		return 0
	}
	outs, _, err := Run(Params{Nodes: nodes, Tile: 16, Window: 2, Delay: delay}, w, h, frames, pipelineRender(w, h))
	if err != nil {
		t.Fatal(err)
	}
	refs := refFrames(w, h, nodes, frames, nil)
	for f := range outs {
		if d := img.MaxDiff(refs[f], outs[f]); d != 0 {
			t.Fatalf("frame %d diverged under straggler: MaxDiff=%g", f, d)
		}
	}
}

// TestDFBPipelineDeadNodeReHomes drops a node: its tiles re-home over the
// survivors and the frame composites the surviving layers exactly.
func TestDFBPipelineDeadNodeReHomes(t *testing.T) {
	const w, h, nodes, frames = 32, 32, 5, 2
	dead := []bool{false, false, true, false, false}
	outs, _, err := Run(Params{Nodes: nodes, Tile: 16, Dead: dead}, w, h, frames, pipelineRender(w, h))
	if err != nil {
		t.Fatal(err)
	}
	refs := refFrames(w, h, nodes, frames, dead)
	for f := range outs {
		if d := img.MaxDiff(refs[f], outs[f]); d != 0 {
			t.Fatalf("frame %d wrong after node loss: MaxDiff=%g", f, d)
		}
	}
}

func TestDFBPipelineWindowOne(t *testing.T) {
	const w, h, nodes, frames = 32, 32, 3, 4
	_, st, err := Run(Params{Nodes: nodes, Tile: 16, Window: 1}, w, h, frames, pipelineRender(w, h))
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxInFlight != 1 {
		t.Fatalf("window=1 but MaxInFlight=%d", st.MaxInFlight)
	}
}

func TestDFBPipelineSingleNode(t *testing.T) {
	const w, h = 20, 20
	outs, _, err := Run(Params{Nodes: 1, Tile: 16}, w, h, 1, pipelineRender(w, h))
	if err != nil {
		t.Fatal(err)
	}
	if d := img.MaxDiff(refFrames(w, h, 1, 1, nil)[0], outs[0]); d != 0 {
		t.Fatalf("single node wrong: MaxDiff=%g", d)
	}
}
