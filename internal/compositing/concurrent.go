package compositing

import (
	"sync"

	"vizsched/internal/img"
)

// Concurrent runs direct-send compositing with real goroutines — one per
// participating processor — exchanging pieces over channels. The Algorithm
// implementations in this package move the same data single-threaded (which
// is what their message accounting measures); Concurrent is the form a
// multi-core head node actually executes, and the tests hold the two to
// identical output.
type Concurrent struct {
	// Workers caps the goroutine count; zero uses one per layer.
	Workers int
}

// Name implements Algorithm.
func (c Concurrent) Name() string { return "concurrent-direct-send" }

// Composite implements Algorithm. Each owner goroutine composites its span
// of the image across all layers front-to-back; spans are disjoint, so the
// only synchronization is the final join.
func (c Concurrent) Composite(layers []*img.Image) (*img.Image, Stats) {
	w, h := validate(layers)
	n := len(layers)
	out := img.New(w, h)
	if n == 1 {
		copy(out.Pix, layers[0].Pix)
		return out, Stats{Rounds: 1}
	}
	workers := c.Workers
	if workers <= 0 || workers > n {
		workers = n
	}
	parts := span{0, w * h}.split(workers)

	var wg sync.WaitGroup
	for _, part := range parts {
		part := part
		if part.size() == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := out.Pix[part.Lo:part.Hi]
			copy(dst, layers[n-1].Pix[part.Lo:part.Hi])
			for i := n - 2; i >= 0; i-- {
				compositePieces(layers[i].Pix[part.Lo:part.Hi], dst)
			}
		}()
	}
	wg.Wait()

	// Each owner pulls every other layer's restriction to its span: across
	// all owners that is (n−1) full images' worth of pixels.
	st := Stats{Rounds: 2, Messages: workers * (n - 1)}
	st.PixelsSent = int64(w*h) * int64(n-1)
	return out, st
}
