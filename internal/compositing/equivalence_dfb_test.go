// Cross-algorithm equivalence including the distributed framebuffer. This
// file is an external test package because dfb imports compositing: the
// registry that sees every algorithm can only exist one level up.
package compositing_test

import (
	"math/rand"
	"testing"

	"vizsched/internal/compositing"
	"vizsched/internal/compositing/dfb"
	"vizsched/internal/img"
)

func randLayers(rng *rand.Rand, n, w, h int) []*img.Image {
	layers := make([]*img.Image, n)
	for i := range layers {
		m := img.New(w, h)
		for p := range m.Pix {
			a := rng.Float32()
			m.Pix[p] = img.RGBA{R: rng.Float32() * a, G: rng.Float32() * a, B: rng.Float32() * a, A: a}
		}
		layers[i] = m
	}
	return layers
}

var allAlgorithms = []compositing.Algorithm{
	compositing.Serial{},
	compositing.DirectSend{},
	compositing.BinarySwap{},
	compositing.TwoThreeSwap{},
	dfb.DFB{Tile: 16},
}

// TestCompositingEquivalenceRandomDepths runs every algorithm, dfb
// included, over layers arriving with randomized depths (ByDepth orders
// them first, as the service does). The swaps match serial within float
// tolerance; dfb must match bit-exactly.
func TestCompositingEquivalenceRandomDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 5, 7, 9, 11, 16, 27} {
		layers := randLayers(rng, n, 24, 20)
		depths := make([]float64, n)
		for i := range depths {
			depths[i] = rng.Float64() * 10
		}
		if n > 2 {
			depths[1] = depths[0] // exercise the stable tie-break
		}
		ordered := compositing.ByDepth(layers, depths)
		want, _ := compositing.Serial{}.Composite(ordered)
		for _, alg := range allAlgorithms[1:] {
			got, _ := alg.Composite(ordered)
			d := img.MaxDiff(want, got)
			if alg.Name() == "dfb" {
				if d != 0 {
					t.Errorf("dfb with n=%d not bit-identical to serial: MaxDiff=%g", n, d)
				}
			} else if d > 1e-5 {
				t.Errorf("%s with n=%d differs from serial by %v", alg.Name(), n, d)
			}
		}
	}
}

// TestCompositingEquivalenceDroppedProc drops one processor's layer — the
// fault the service sees when a node dies mid-frame and the job re-resolves
// over the survivors. Every algorithm must agree on the surviving set, at
// every drop position (front, middle, back).
func TestCompositingEquivalenceDroppedProc(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 8, 12} {
		layers := randLayers(rng, n, 16, 12)
		for _, drop := range []int{0, n / 2, n - 1} {
			survivors := make([]*img.Image, 0, n-1)
			survivors = append(survivors, layers[:drop]...)
			survivors = append(survivors, layers[drop+1:]...)
			want, _ := compositing.Serial{}.Composite(survivors)
			for _, alg := range allAlgorithms[1:] {
				got, _ := alg.Composite(survivors)
				d := img.MaxDiff(want, got)
				if alg.Name() == "dfb" && d != 0 {
					t.Errorf("dfb n=%d drop=%d not bit-identical: MaxDiff=%g", n, drop, d)
				} else if d > 1e-5 {
					t.Errorf("%s n=%d drop=%d differs by %v", alg.Name(), n, drop, d)
				}
			}
		}
	}
}

// TestCompositingEquivalenceSlowProc simulates a straggler: the slow
// processor's fragments arrive last (dfb reduces everything else first and
// buffers around the hole). Output must not depend on who was slow.
func TestCompositingEquivalenceSlowProc(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const w, h, n = 32, 24, 9
	layers := randLayers(rng, n, w, h)
	want, _ := compositing.Serial{}.Composite(layers)
	layout := dfb.NewLayout(w, h, 16)
	for slow := 0; slow < n; slow++ {
		out := img.New(w, h)
		red := dfb.NewReducer(layout, n, out)
		for tile := 0; tile < layout.NumTiles(); tile++ {
			for i := 0; i < n; i++ {
				if i == slow {
					continue
				}
				if _, err := red.Add(dfb.Fragment{Tile: tile, Rank: i, Pix: dfb.ExtractTile(layout, layers[i], tile)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if red.Done() {
			t.Fatalf("slow=%d: reducer finalized without the straggler's fragments", slow)
		}
		for tile := 0; tile < layout.NumTiles(); tile++ {
			if _, err := red.Add(dfb.Fragment{Tile: tile, Rank: slow, Pix: dfb.ExtractTile(layout, layers[slow], tile)}); err != nil {
				t.Fatal(err)
			}
		}
		if !red.Done() {
			t.Fatalf("slow=%d: reducer incomplete", slow)
		}
		if d := img.MaxDiff(want, out); d != 0 {
			t.Errorf("slow=%d: output depends on straggler position: MaxDiff=%g", slow, d)
		}
	}
}
