// Package compositing implements the sort-last image compositing algorithms
// the paper's rendering service relies on: serial over (the correctness
// reference), direct send, binary swap (Ma et al. [12]), and 2-3 swap
// (Yu, Wang & Ma [13]), which the paper's system uses.
//
// All algorithms take per-node full-viewport layers in *front-to-back* depth
// order (the order the head node derives from brick depths) and produce the
// same final image; they differ in how the pixel work and communication are
// distributed, which is what the Stats they return measure.
//
// The swap algorithms run in synchronous rounds over explicit "processor"
// states rather than goroutines: the data movement and message accounting
// are the real algorithm; transport is the service layer's concern.
//
// Faithfulness note: our 2-3 swap uses a uniform group size (2 or 3) per
// round, which is exact for any processor count of the form 2^a·3^b. Other
// counts are first reduced by a single parallel fold-in pre-round: the
// processors are partitioned into the largest feasible 2^a·3^b count of
// contiguous depth runs and each run composites internally, concurrently.
// The original paper instead mixes group sizes within a round with
// multi-piece sends; the fold-in variant costs one extra round (never a
// serial chain of them), keeps every processor busy after the first
// exchange, and composites identically.
package compositing

import (
	"cmp"
	"fmt"
	"slices"

	"vizsched/internal/img"
)

// Stats describes the communication an algorithm performed.
type Stats struct {
	// Rounds is the number of synchronous exchange steps, including the
	// final gather.
	Rounds int
	// Messages is the total point-to-point message count.
	Messages int
	// PixelsSent is the total number of pixels moved between processors.
	PixelsSent int64
}

// BytesSent returns the wire volume assuming 16-byte RGBA pixels.
func (s Stats) BytesSent() int64 { return s.PixelsSent * 16 }

// Algorithm is a sort-last compositing strategy.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Composite merges layers (front-to-back) into the final image.
	Composite(layers []*img.Image) (*img.Image, Stats)
}

// validate panics on degenerate input; compositing zero layers is always a
// pipeline bug upstream.
func validate(layers []*img.Image) (w, h int) {
	if len(layers) == 0 {
		panic("compositing: no layers")
	}
	w, h = layers[0].W, layers[0].H
	for i, l := range layers {
		if l.W != w || l.H != h {
			panic(fmt.Sprintf("compositing: layer %d is %dx%d, want %dx%d", i, l.W, l.H, w, h))
		}
	}
	return w, h
}

// Serial composites on a single processor — the reference every other
// algorithm must match, and the degenerate case for a one-node render group.
type Serial struct{}

// Name implements Algorithm.
func (Serial) Name() string { return "serial" }

// Composite implements Algorithm.
func (Serial) Composite(layers []*img.Image) (*img.Image, Stats) {
	validate(layers)
	// Everyone ships their full layer to the root: n-1 messages, then the
	// root composites back-to-front.
	acc := layers[len(layers)-1].Clone()
	for i := len(layers) - 2; i >= 0; i-- {
		acc.CompositeOver(layers[i])
	}
	n := len(layers)
	return acc, Stats{
		Rounds:     1,
		Messages:   n - 1,
		PixelsSent: int64(n-1) * int64(acc.W) * int64(acc.H),
	}
}

// span is a contiguous range of flattened pixel indices [Lo, Hi).
type span struct{ Lo, Hi int }

func (s span) size() int { return s.Hi - s.Lo }

// split divides the span into k contiguous near-equal parts.
func (s span) split(k int) []span {
	parts := make([]span, k)
	n := s.size()
	for i := 0; i < k; i++ {
		parts[i] = span{
			Lo: s.Lo + n*i/k,
			Hi: s.Lo + n*(i+1)/k,
		}
	}
	return parts
}

// proc is one participant in a swap exchange. Its pixels cover exactly its
// span and hold the eager composite of a contiguous run of original layers.
type proc struct {
	rank int
	sp   span
	pix  []img.RGBA
}

// compositePieces merges same-span pixel runs in front-to-back order.
func compositePieces(front, back []img.RGBA) {
	for i := range back {
		back[i] = front[i].Over(back[i])
	}
}

// DirectSend partitions the image into one span per processor; everyone
// sends each owner its piece, owners composite in depth order, and the root
// gathers. Simple, but every processor talks to every other.
type DirectSend struct{}

// Name implements Algorithm.
func (DirectSend) Name() string { return "direct-send" }

// Composite implements Algorithm.
func (DirectSend) Composite(layers []*img.Image) (*img.Image, Stats) {
	w, h := validate(layers)
	n := len(layers)
	full := span{0, w * h}
	out := img.New(w, h)
	if n == 1 {
		copy(out.Pix, layers[0].Pix)
		return out, Stats{Rounds: 1}
	}
	parts := full.split(n)
	var st Stats
	st.Rounds = 2 // exchange + gather
	for owner, part := range parts {
		// Owner composites every layer's restriction to its part,
		// front-to-back. Each non-owner contributed one message.
		dst := out.Pix[part.Lo:part.Hi]
		copy(dst, layers[n-1].Pix[part.Lo:part.Hi])
		for i := n - 2; i >= 0; i-- {
			compositePieces(layers[i].Pix[part.Lo:part.Hi], dst)
		}
		st.Messages += n - 1
		st.PixelsSent += int64(part.size()) * int64(n-1)
		if owner != 0 {
			// Gather to root.
			st.Messages++
			st.PixelsSent += int64(part.size())
		}
	}
	return out, st
}

// groupSizesFor returns the uniform per-round group size sequence for a
// 2^a·3^b processor count, and ok=false otherwise.
func groupSizesFor(n int) (ks []int, ok bool) {
	for n%2 == 0 {
		ks = append(ks, 2)
		n /= 2
	}
	for n%3 == 0 {
		ks = append(ks, 3)
		n /= 3
	}
	return ks, n == 1
}

// largest23LE returns the largest 2^a·3^b value ≤ n (n ≥ 1).
func largest23LE(n int) int {
	best := 1
	for p2 := 1; p2 <= n; p2 *= 2 {
		for v := p2; v <= n; v *= 3 {
			if v > best {
				best = v
			}
		}
	}
	return best
}

// swap is the shared engine behind BinarySwap and TwoThreeSwap. radixOnly=2
// restricts rounds to pairs (binary swap); 0 allows 2s and 3s.
func swap(layers []*img.Image, radixOnly int) (*img.Image, Stats) {
	w, h := validate(layers)
	var st Stats
	full := span{0, w * h}

	// Seed processor states, front-to-back.
	procs := make([]*proc, len(layers))
	for i, l := range layers {
		pix := make([]img.RGBA, full.size())
		copy(pix, l.Pix)
		procs[i] = &proc{rank: i, sp: full, pix: pix}
	}

	// Fold excess processors into depth-adjacent neighbors until the count
	// supports uniform rounds. The processors are partitioned into `target`
	// contiguous depth runs and every run composites internally at the same
	// time, so the pre-step costs exactly one round no matter how many
	// processors fold — the excess determines only the message count.
	target := len(procs)
	if radixOnly == 2 {
		target = 1
		for target*2 <= len(procs) {
			target *= 2
		}
	} else {
		target = largest23LE(len(procs))
	}
	if target < len(procs) {
		st.Rounds++
		runs := span{0, len(procs)}.split(target)
		folded := make([]*proc, target)
		for i, run := range runs {
			members := procs[run.Lo:run.Hi]
			// The run's front-to-back composite lands in the backmost
			// member's buffer; the survivor keeps the front member's rank so
			// rank 0 (the gather root) always outlives the fold.
			keep := members[len(members)-1]
			for m := len(members) - 2; m >= 0; m-- {
				compositePieces(members[m].pix, keep.pix)
				st.Messages++
				st.PixelsSent += int64(full.size())
			}
			keep.rank = members[0].rank
			folded[i] = keep
		}
		procs = folded
	}

	ks, ok := groupSizesFor(len(procs))
	if !ok {
		panic("compositing: internal error: fold-in left a bad processor count")
	}

	for _, k := range ks {
		st.Rounds++
		groups := len(procs) / k
		next := make([]*proc, len(procs))
		for g := 0; g < groups; g++ {
			members := procs[g*k : (g+1)*k]
			parts := members[0].sp.split(k)
			for j, part := range parts {
				keeper := members[j]
				rel := span{part.Lo - keeper.sp.Lo, part.Hi - keeper.sp.Lo}
				// Composite all members' restrictions front-to-back into the
				// backmost member's buffer slice for this part.
				dst := members[k-1].pix[rel.Lo:rel.Hi]
				for m := k - 2; m >= 0; m-- {
					compositePieces(members[m].pix[rel.Lo:rel.Hi], dst)
				}
				// Each member other than the keeper sent the keeper one piece.
				st.Messages += k - 1
				st.PixelsSent += int64(part.size()) * int64(k-1)
				np := &proc{rank: keeper.rank, sp: part, pix: append([]img.RGBA(nil), dst...)}
				// Next round groups the j-th keepers across groups: order
				// them so ranks holding the same relative part are adjacent.
				next[j*groups+g] = np
			}
		}
		procs = next
	}

	// Gather: every proc ships its final piece to the root.
	out := img.New(w, h)
	st.Rounds++
	for _, p := range procs {
		copy(out.Pix[p.sp.Lo:p.sp.Hi], p.pix)
		if p.rank != 0 {
			st.Messages++
			st.PixelsSent += int64(p.sp.size())
		}
	}
	return out, st
}

// BinarySwap is the classic hierarchical halving exchange of Ma et al. [12].
// Non-power-of-two layer counts are folded in first.
type BinarySwap struct{}

// Name implements Algorithm.
func (BinarySwap) Name() string { return "binary-swap" }

// Composite implements Algorithm.
func (BinarySwap) Composite(layers []*img.Image) (*img.Image, Stats) {
	return swap(layers, 2)
}

// TwoThreeSwap generalizes binary swap to rounds of pair and triple
// exchanges, supporting 2^a·3^b processor counts natively (others fold in) —
// the algorithm the paper's implementation uses [13].
type TwoThreeSwap struct{}

// Name implements Algorithm.
func (TwoThreeSwap) Name() string { return "2-3-swap" }

// Composite implements Algorithm.
func (TwoThreeSwap) Composite(layers []*img.Image) (*img.Image, Stats) {
	return swap(layers, 0)
}

// BinarySwapRounds returns the synchronous round count binary swap performs
// for n layers, including the final gather and any fold-in pre-round. The
// simulator prices composites with these closed forms so it never has to
// push pixels in virtual time.
func BinarySwapRounds(n int) int {
	if n <= 1 {
		return 1
	}
	target := 1
	for target*2 <= n {
		target *= 2
	}
	rounds := 1 // gather
	if target < n {
		rounds++
	}
	for t := target; t > 1; t /= 2 {
		rounds++
	}
	return rounds
}

// TwoThreeSwapRounds returns the synchronous round count 2-3 swap performs
// for n layers, including the final gather and any fold-in pre-round.
func TwoThreeSwapRounds(n int) int {
	if n <= 1 {
		return 1
	}
	target := largest23LE(n)
	rounds := 1 // gather
	if target < n {
		rounds++
	}
	ks, _ := groupSizesFor(target)
	return rounds + len(ks)
}

// DirectSendRounds returns direct send's round count for n layers: one
// all-to-all exchange plus the gather.
func DirectSendRounds(n int) int {
	if n <= 1 {
		return 1
	}
	return 2
}

// ByDepth sorts fragments' layers front-to-back given parallel slices of
// images and depths, returning the ordered layers. It is the small glue the
// service and tests use before calling an Algorithm.
func ByDepth(images []*img.Image, depths []float64) []*img.Image {
	if len(images) != len(depths) {
		panic("compositing: images/depths length mismatch")
	}
	idx := make([]int, len(images))
	for i := range idx {
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int { return cmp.Compare(depths[a], depths[b]) })
	out := make([]*img.Image, len(images))
	for i, j := range idx {
		out[i] = images[j]
	}
	return out
}
