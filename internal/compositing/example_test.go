package compositing_test

import (
	"fmt"

	"vizsched/internal/compositing"
	"vizsched/internal/img"
)

// Nine rendering nodes composite their full-viewport fragments with the
// 2-3 swap algorithm: two ternary exchange rounds plus a gather, against a
// serial reference image.
func ExampleTwoThreeSwap() {
	layers := make([]*img.Image, 9)
	for i := range layers {
		m := img.New(8, 8)
		// Each node contributes a translucent tint.
		for p := range m.Pix {
			m.Pix[p] = img.RGBA{R: float32(i) / 20, A: 0.1}
		}
		layers[i] = m
	}
	want, _ := compositing.Serial{}.Composite(layers)
	got, stats := compositing.TwoThreeSwap{}.Composite(layers)

	fmt.Printf("rounds: %d\n", stats.Rounds)
	fmt.Printf("matches serial: %v\n", img.MaxDiff(want, got) < 1e-5)
	// Output:
	// rounds: 3
	// matches serial: true
}
