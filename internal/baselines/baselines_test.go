package baselines

import (
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func mkJob(id core.JobID, class core.Class, action core.ActionID, ds volume.DatasetID, nChunks int, size units.Bytes) *core.Job {
	j := &core.Job{ID: id, Class: class, Action: action, Dataset: ds}
	j.Tasks = make([]core.Task, nChunks)
	for i := range j.Tasks {
		j.Tasks[i] = core.Task{
			Job:   j,
			Index: i,
			Chunk: volume.ChunkID{Dataset: ds, Index: i},
			Size:  size,
		}
	}
	j.Remaining = nChunks
	return j
}

func newHead(n int) *core.HeadState {
	return core.NewHeadState(n, 2*units.GB, core.DefaultCostModel())
}

func TestMetadata(t *testing.T) {
	cases := []struct {
		s       core.Scheduler
		name    string
		trigger core.Trigger
	}{
		{FCFS{}, "FCFS", core.OnArrival},
		{FCFSL{}, "FCFSL", core.OnArrival},
		{FCFSU{}, "FCFSU", core.OnArrival},
		{NewSF(0), "SF", core.Periodic},
		{NewFS(0), "FS", core.Periodic},
	}
	for _, c := range cases {
		if c.s.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.s.Name(), c.name)
		}
		if c.s.Trigger() != c.trigger {
			t.Errorf("%s trigger = %v, want %v", c.name, c.s.Trigger(), c.trigger)
		}
	}
}

func TestFCFSBalancesByAvailableTime(t *testing.T) {
	h := newHead(4)
	j := mkJob(1, core.Interactive, 1, 1, 4, 512*units.MB)
	as := FCFS{}.Schedule(0, []*core.Job{j}, h)
	if len(as) != 4 {
		t.Fatalf("assigned %d, want 4", len(as))
	}
	seen := map[core.NodeID]bool{}
	for _, a := range as {
		seen[a.Node] = true
	}
	// Four equal tasks over four idle nodes: one each.
	if len(seen) != 4 {
		t.Errorf("FCFS used %d nodes, want 4", len(seen))
	}
}

func TestFCFSIgnoresLocality(t *testing.T) {
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	// Node 1 caches the chunk but is marginally busier: FCFS picks node 0
	// (smaller available time) anyway.
	h.Caches[1].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	h.Available[1] = units.Time(units.Millisecond)
	as := FCFS{}.Schedule(0, []*core.Job{j}, h)
	if as[0].Node != 0 {
		t.Errorf("FCFS chose node %d; locality should not matter", as[0].Node)
	}
}

func TestFCFSLPrefersCachedNode(t *testing.T) {
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	h.Caches[1].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	h.Available[1] = units.Time(units.Millisecond)
	as := FCFSL{}.Schedule(0, []*core.Job{j}, h)
	if as[0].Node != 1 {
		t.Errorf("FCFSL chose node %d, want cached node 1", as[0].Node)
	}
}

func TestFCFSLSchedulesBatchImmediately(t *testing.T) {
	// The key behavioral difference from OURS: FCFSL does not defer batch.
	h := newHead(2)
	b := mkJob(1, core.Batch, 1, 9, 2, 512*units.MB)
	as := FCFSL{}.Schedule(0, []*core.Job{b}, h)
	if len(as) != 2 {
		t.Errorf("FCFSL deferred batch: assigned %d of 2", len(as))
	}
}

func TestFCFSUFixedMapping(t *testing.T) {
	h := newHead(4)
	j := mkJob(1, core.Interactive, 1, 1, 4, 256*units.MB)
	as := FCFSU{}.Schedule(0, []*core.Job{j}, h)
	for _, a := range as {
		if int(a.Node) != a.Task.Index {
			t.Errorf("task %d on node %d, want fixed mapping", a.Task.Index, a.Node)
		}
	}
	// Decomposition override: one chunk per node.
	d := FCFSU{}.Decomposition(4)
	if got := len(d.Split(units.GB)); got != 4 {
		t.Errorf("uniform decomposition yielded %d chunks, want 4", got)
	}
}

func TestFCFSUFallsBackOnFailedNode(t *testing.T) {
	h := newHead(4)
	h.MarkFailed(2)
	j := mkJob(1, core.Interactive, 1, 1, 4, 256*units.MB)
	as := FCFSU{}.Schedule(0, []*core.Job{j}, h)
	if len(as) != 4 {
		t.Fatalf("assigned %d, want 4", len(as))
	}
	for _, a := range as {
		if a.Node == 2 {
			t.Error("task placed on failed node")
		}
	}
}

func TestSFOrdersShortestFirst(t *testing.T) {
	h := newHead(1)
	big := mkJob(1, core.Batch, 1, 1, 4, 512*units.MB)
	small := mkJob(2, core.Batch, 2, 2, 1, 64*units.MB)
	as := NewSF(0).Schedule(0, []*core.Job{big, small}, h)
	if len(as) != 5 {
		t.Fatalf("assigned %d, want 5", len(as))
	}
	// The single-chunk 64MB job must be placed before the 4×512MB job.
	if as[0].Task.Job.ID != 2 {
		t.Errorf("first assignment from job %d, want the short job", as[0].Task.Job.ID)
	}
}

func TestFSServesLeastServedActionFirst(t *testing.T) {
	fs := NewFS(0)
	h := newHead(2)
	// Action 1 has already consumed lots of service.
	fs.service[1] = 100 * units.Second
	j1 := mkJob(1, core.Interactive, 1, 1, 1, 64*units.MB)
	j2 := mkJob(2, core.Interactive, 2, 2, 1, 64*units.MB)
	as := fs.Schedule(0, []*core.Job{j1, j2}, h)
	if len(as) == 0 {
		t.Fatal("nothing assigned")
	}
	if as[0].Task.Job.ID != 2 {
		t.Errorf("first served job %d, want least-served action's job 2", as[0].Task.Job.ID)
	}
}

func TestFSInterleavesActionsUnderBacklog(t *testing.T) {
	fs := NewFS(10 * units.Millisecond)
	h := newHead(1)
	// Two actions, two queued jobs each: FS must alternate actions rather
	// than assign one user's burst first.
	var jobs []*core.Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, mkJob(core.JobID(i+1), core.Interactive, core.ActionID(i%2+1), 1, 1, 64*units.MB))
	}
	as := fs.Schedule(0, jobs, h)
	if len(as) != 4 {
		t.Fatalf("FS assigned %d of 4", len(as))
	}
	if a0, a1 := as[0].Task.Job.Action, as[1].Task.Job.Action; a0 == a1 {
		t.Errorf("first two assignments from the same action %d; want interleaved", a0)
	}
}

func TestFSAccumulatesService(t *testing.T) {
	fs := NewFS(units.Second)
	h := newHead(2)
	j := mkJob(1, core.Interactive, 7, 1, 2, 256*units.MB)
	fs.Schedule(0, []*core.Job{j}, h)
	if fs.service[7] <= 0 {
		t.Error("service not accumulated for action 7")
	}
}

func TestAllBaselinesHandleNoAliveNodes(t *testing.T) {
	scheds := []core.Scheduler{FCFS{}, FCFSL{}, FCFSU{}, NewSF(0), NewFS(0)}
	for _, s := range scheds {
		h := newHead(2)
		h.MarkFailed(0)
		h.MarkFailed(1)
		j := mkJob(1, core.Interactive, 1, 1, 2, 256*units.MB)
		if as := s.Schedule(0, []*core.Job{j}, h); len(as) != 0 {
			t.Errorf("%s assigned %d tasks with no nodes alive", s.Name(), len(as))
		}
	}
}

func TestSchedulersSkipAssignedTasks(t *testing.T) {
	scheds := []core.Scheduler{FCFS{}, FCFSL{}, FCFSU{}, NewSF(0), NewFS(0)}
	for _, s := range scheds {
		h := newHead(2)
		j := mkJob(1, core.Interactive, 1, 1, 2, 256*units.MB)
		j.Tasks[0].Assigned = true
		as := s.Schedule(0, []*core.Job{j}, h)
		if len(as) != 1 || as[0].Task.Index != 1 {
			t.Errorf("%s reassigned already-assigned task: %v", s.Name(), as)
		}
	}
}
