package baselines

import (
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
)

func TestDelayMetadata(t *testing.T) {
	d := NewDelay(0, 0)
	if d.Name() != "DELAY" || d.Trigger() != core.Periodic {
		t.Error("metadata wrong")
	}
	if d.Cycle() != core.DefaultCycle || d.Wait != 5*core.DefaultCycle {
		t.Errorf("defaults: cycle=%v wait=%v", d.Cycle(), d.Wait)
	}
}

func TestDelayPrefersBusyLocalNodeWithinWait(t *testing.T) {
	d := NewDelay(10*units.Millisecond, 50*units.Millisecond)
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	// Node 1 caches the chunk but is busy for 30ms — within the wait bound;
	// node 0 is idle. Delay scheduling queues on the busy local node.
	h.Caches[1].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	h.Available[1] = units.Time(30 * units.Millisecond)
	as := d.Schedule(0, []*core.Job{j}, h)
	if len(as) != 1 || as[0].Node != 1 {
		t.Fatalf("assigned %v, want busy local node 1", as)
	}
}

func TestDelayDefersWhenLocalTooBusy(t *testing.T) {
	d := NewDelay(10*units.Millisecond, 50*units.Millisecond)
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	j.Issued = 0
	h.Caches[1].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	// Local node busy beyond the wait bound, job fresh: defer entirely.
	h.Available[1] = units.Time(10 * units.Second)
	as := d.Schedule(0, []*core.Job{j}, h)
	if len(as) != 0 {
		t.Fatalf("assigned %v, want deferral", as)
	}
	if j.Tasks[0].Assigned {
		t.Error("task marked assigned while deferred")
	}
	// After the job has waited past D, it accepts a non-local node.
	later := units.Time(100 * units.Millisecond)
	as = d.Schedule(later, []*core.Job{j}, h)
	if len(as) != 1 || as[0].Node != 0 {
		t.Fatalf("assigned %v after wait, want fallback to node 0", as)
	}
}

func TestDelayGreedyWhenNoReplicaExists(t *testing.T) {
	d := NewDelay(10*units.Millisecond, 50*units.Millisecond)
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	as := d.Schedule(0, []*core.Job{j}, h)
	if len(as) != 1 {
		t.Fatalf("uncached task deferred: %v", as)
	}
}
