package baselines

import (
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
)

func TestDelayMetadata(t *testing.T) {
	d := NewDelay(0, 0)
	if d.Name() != "DELAY" || d.Trigger() != core.Periodic {
		t.Error("metadata wrong")
	}
	if d.Cycle() != core.DefaultCycle || d.Wait != 5*core.DefaultCycle {
		t.Errorf("defaults: cycle=%v wait=%v", d.Cycle(), d.Wait)
	}
}

func TestDelayPrefersBusyLocalNodeWithinWait(t *testing.T) {
	d := NewDelay(10*units.Millisecond, 50*units.Millisecond)
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	// Node 1 caches the chunk but is busy for 30ms — within the wait bound;
	// node 0 is idle. Delay scheduling queues on the busy local node.
	h.Caches[1].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	h.Available[1] = units.Time(30 * units.Millisecond)
	as := d.Schedule(0, []*core.Job{j}, h)
	if len(as) != 1 || as[0].Node != 1 {
		t.Fatalf("assigned %v, want busy local node 1", as)
	}
}

func TestDelayDefersWhenLocalTooBusy(t *testing.T) {
	d := NewDelay(10*units.Millisecond, 50*units.Millisecond)
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	j.Issued = 0
	h.Caches[1].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	// Local node busy beyond the wait bound, job fresh: defer entirely.
	h.Available[1] = units.Time(10 * units.Second)
	as := d.Schedule(0, []*core.Job{j}, h)
	if len(as) != 0 {
		t.Fatalf("assigned %v, want deferral", as)
	}
	if j.Tasks[0].Assigned {
		t.Error("task marked assigned while deferred")
	}
	// After the job has waited past D, it accepts a non-local node.
	later := units.Time(100 * units.Millisecond)
	as = d.Schedule(later, []*core.Job{j}, h)
	if len(as) != 1 || as[0].Node != 0 {
		t.Fatalf("assigned %v after wait, want fallback to node 0", as)
	}
}

func TestDelayGreedyWhenNoReplicaExists(t *testing.T) {
	d := NewDelay(10*units.Millisecond, 50*units.Millisecond)
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	as := d.Schedule(0, []*core.Job{j}, h)
	if len(as) != 1 {
		t.Fatalf("uncached task deferred: %v", as)
	}
}

func TestDelayReplicaCrashMidWaitFallsBackGreedy(t *testing.T) {
	d := NewDelay(10*units.Millisecond, 50*units.Millisecond)
	h := newHead(3)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	j.Issued = 0
	// The only replica lives on node 2, busy beyond the wait bound: the task
	// defers, holding out for that copy.
	h.Caches[2].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	h.Available[2] = units.Time(10 * units.Second)
	if as := d.Schedule(0, []*core.Job{j}, h); len(as) != 0 {
		t.Fatalf("assigned %v, want deferral while the replica's queue drains", as)
	}
	// Mid-wait, the only candidate crashes: its predicted cache is forgotten,
	// so the next cycle takes the "no replica anywhere" branch and assigns
	// greedily instead of waiting out a bound that can no longer pay off.
	h.MarkFailed(2)
	as := d.Schedule(units.Time(20*units.Millisecond), []*core.Job{j}, h)
	if len(as) != 1 {
		t.Fatalf("assigned %v after replica crash, want immediate greedy fallback", as)
	}
	if as[0].Node == 2 {
		t.Fatalf("fell back onto the dead node 2")
	}
}

func TestDelayAllNodesDeadThenRepair(t *testing.T) {
	d := NewDelay(10*units.Millisecond, 50*units.Millisecond)
	h := newHead(2)
	j := mkJob(1, core.Interactive, 1, 1, 1, 512*units.MB)
	j.Issued = 0
	// The sole replica holder crashes, then the remaining node does too: the
	// greedy fallback has no candidate and the task must stay queued rather
	// than be assigned to a corpse.
	h.Caches[1].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	h.Available[1] = units.Time(10 * units.Second)
	h.MarkFailed(1)
	h.MarkFailed(0)
	if as := d.Schedule(units.Time(20*units.Millisecond), []*core.Job{j}, h); len(as) != 0 {
		t.Fatalf("assigned %v with every node down", as)
	}
	if j.Tasks[0].Assigned {
		t.Fatal("task marked assigned with every node down")
	}
	// A repair restores service; the task lands on the revived node, cold.
	h.MarkRepaired(0, units.Time(30*units.Millisecond))
	as := d.Schedule(units.Time(30*units.Millisecond), []*core.Job{j}, h)
	if len(as) != 1 || as[0].Node != 0 {
		t.Fatalf("assigned %v after repair, want node 0", as)
	}
}
