package baselines

import (
	"vizsched/internal/core"
	"vizsched/internal/units"
)

// Delay implements delay scheduling (Zaharia et al., EuroSys 2010 — the
// paper's reference [26] and the origin of its FS baseline): a task whose
// data-local nodes are busy *waits* rather than running remotely, up to a
// bound, because data locality usually frees up within a few task lengths.
// It is not one of the paper's six compared policies; it exists here as an
// extension baseline for the scheduling ablations.
type Delay struct {
	// Period is the scheduling cycle.
	Period units.Duration
	// Wait is D: how long a task may hold out for a cache-local slot before
	// accepting any node.
	Wait units.Duration
}

// NewDelay returns a delay scheduler; non-positive arguments select the
// default cycle and a wait of five cycles.
func NewDelay(period, wait units.Duration) *Delay {
	if period <= 0 {
		period = core.DefaultCycle
	}
	if wait <= 0 {
		wait = 5 * period
	}
	return &Delay{Period: period, Wait: wait}
}

// Name implements core.Scheduler.
func (*Delay) Name() string { return "DELAY" }

// Trigger implements core.Scheduler.
func (*Delay) Trigger() core.Trigger { return core.Periodic }

// Cycle implements core.Scheduler.
func (d *Delay) Cycle() units.Duration { return d.Period }

// Schedule implements core.Scheduler.
func (d *Delay) Schedule(now units.Time, queue []*core.Job, head *core.HeadState) []core.Assignment {
	var out []core.Assignment
	assign := func(t *core.Task, k core.NodeID) {
		t.Assigned = true
		head.CommitAssign(t, k, now)
		out = append(out, core.Assignment{Task: t, Node: k})
	}
	for _, j := range queue {
		for i := range j.Tasks {
			t := &j.Tasks[i]
			if t.Assigned {
				continue
			}
			local := head.CachedOn(t.Chunk)
			if len(local) == 0 {
				// No replica anywhere: waiting cannot buy locality.
				if k, ok := localNode(now, t, head); ok {
					assign(t, k)
				}
				continue
			}
			// Earliest-available local node.
			best := local[0]
			for _, k := range local[1:] {
				if head.Available[k] < head.Available[best] {
					best = k
				}
			}
			start := head.Available[best]
			if start < now {
				start = now
			}
			switch {
			case start.Sub(now) <= units.Duration(d.Wait):
				// A local slot frees soon enough: queue there.
				assign(t, best)
			case now.Sub(j.Issued) > units.Duration(d.Wait):
				// Waited long enough; take any node.
				if k, ok := localNode(now, t, head); ok {
					assign(t, k)
				}
			default:
				// Keep waiting for locality; re-presented next cycle.
			}
		}
	}
	return out
}
