package baselines

import (
	"vizsched/internal/core"
	"vizsched/internal/units"
)

// DFRS is the dynamic-fractional-resource-scheduling baseline (§5.13, after
// Casanova/Stillwell/Vivien, arXiv:1106.4985): instead of committing every
// queued task to a node FIFO at arrival like the FCFS family, it re-binds
// work every window, packing each node with up to Slots concurrently
// running tasks at equal fractional shares. Two behaviours fall out:
//
//   - Late binding: a batch task is placed only when some node's committed
//     backlog is below Slots tasks' worth of work; everything else stays in
//     the queue and re-binds next window. Nodes therefore never sit idle
//     behind another node's mispredicted FIFO — the utilization gap the
//     DFRS paper measures against batch scheduling.
//   - Fractional execution: the fracshare engine (sim.Config.FracShare)
//     runs the node's committed tasks concurrently at equal shares and
//     re-prices completions as the share changes, so short tasks are not
//     convoyed behind long ones — the stretch gap.
//
// The paper's DFRS re-allocates shares periodically; here the placement
// half re-binds every Window while the engine re-allocates shares at every
// task start and completion — the continuous limit of the same policy, and
// the natural fit for a DES. DFRS reads the same head tables as every other
// policy: Available[k] remains a good drain-time predictor under equal
// shares, because the shares of a node's tasks always sum to its capacity.
//
// Without the fracshare layer the engine serializes each node's queue and
// DFRS degrades to a late-binding FCFSL — placement still re-binds, but
// nothing runs fractionally. The fracsweep experiment always pairs DFRS
// with FracShare.
type DFRS struct {
	Window units.Duration
	// Slots bounds each node's committed in-flight work to Slots tasks'
	// worth; non-positive selects fracshare's default slot count (2).
	Slots int
}

// NewDFRS returns the DFRS baseline; non-positive windows select the default
// cycle and non-positive slot counts the fracshare default.
func NewDFRS(window units.Duration, slots int) *DFRS {
	if window <= 0 {
		window = core.DefaultCycle
	}
	if slots <= 0 {
		slots = 2
	}
	return &DFRS{Window: window, Slots: slots}
}

// Name implements core.Scheduler.
func (*DFRS) Name() string { return "DFRS" }

// Trigger implements core.Scheduler.
func (*DFRS) Trigger() core.Trigger { return core.Periodic }

// Cycle implements core.Scheduler.
func (s *DFRS) Cycle() units.Duration { return s.Window }

// Schedule implements core.Scheduler. Interactive tasks place immediately
// on the completion-optimal node (they must not wait a window); batch tasks
// late-bind: a node is eligible only while its committed backlog is below
// Slots × the task's predicted execution, and ineligible tasks simply stay
// queued for the next window.
func (s *DFRS) Schedule(now units.Time, queue []*core.Job, head *core.HeadState) []core.Assignment {
	var out []core.Assignment
	for _, j := range queue {
		for i := range j.Tasks {
			t := &j.Tasks[i]
			if t.Assigned {
				continue
			}
			var k core.NodeID
			var ok bool
			if j.Class == core.Interactive {
				k, ok = localNode(now, t, head)
			} else {
				k, ok = s.fractionalNode(now, t, head)
			}
			if !ok {
				continue // late binding: no capacity now, re-bind next window
			}
			t.Assigned = true
			head.CommitAssign(t, k, now)
			out = append(out, core.Assignment{Task: t, Node: k})
		}
	}
	return out
}

// fractionalNode returns the completion-optimal node whose committed
// backlog still has a free fractional slot for t: Available[k] − now must be
// under Slots × the task's predicted execution there. False when every node
// is packed — the task stays queued.
func (s *DFRS) fractionalNode(now units.Time, t *core.Task, head *core.HeadState) (core.NodeID, bool) {
	best := core.NodeID(-1)
	var bestDone units.Time
	for k := 0; k < head.Nodes(); k++ {
		if !head.Alive(core.NodeID(k)) {
			continue
		}
		exec := head.PredictExec(t, core.NodeID(k))
		backlog := head.Available[k].Sub(now)
		if backlog > 0 && backlog >= exec*units.Duration(s.Slots) {
			continue // node packed: Slots tasks' worth already committed
		}
		start := head.Available[k]
		if start < now {
			start = now
		}
		done := start.Add(exec)
		if best < 0 || done < bestDone {
			best = core.NodeID(k)
			bestDone = done
		}
	}
	return best, best >= 0
}
