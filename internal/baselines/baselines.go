// Package baselines implements the five scheduling policies the paper
// compares OURS against (§VI-B): FCFS, FCFSL, FCFSU, SF, and FS, each
// "modified moderately for our application" exactly as the paper describes —
// they share the head node's prediction tables and the greedy
// available-time strategy, and differ only in ordering, locality awareness,
// and data decomposition.
package baselines

import (
	"cmp"
	"slices"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// greedyNode returns the alive node with the smallest predicted available
// time — the FCFS family's placement rule. Ties break toward lower IDs.
func greedyNode(head *core.HeadState) (core.NodeID, bool) {
	best := core.NodeID(-1)
	var bestAt units.Time
	for k := 0; k < head.Nodes(); k++ {
		if !head.Alive(core.NodeID(k)) {
			continue
		}
		if best < 0 || head.Available[k] < bestAt {
			best = core.NodeID(k)
			bestAt = head.Available[k]
		}
	}
	return best, best >= 0
}

// localNode returns the alive node minimizing predicted completion time
// max(Available, now) + cost(chunk, node) — greedy with data locality.
func localNode(now units.Time, t *core.Task, head *core.HeadState) (core.NodeID, bool) {
	best := core.NodeID(-1)
	var bestDone units.Time
	for k := 0; k < head.Nodes(); k++ {
		if !head.Alive(core.NodeID(k)) {
			continue
		}
		start := head.Available[k]
		if start < now {
			start = now
		}
		done := start.Add(head.PredictExec(t, core.NodeID(k)))
		if best < 0 || done < bestDone {
			best = core.NodeID(k)
			bestDone = done
		}
	}
	return best, best >= 0
}

// assignAll places every unassigned task of the given jobs using pick,
// committing each placement to the head tables.
func assignAll(now units.Time, jobs []*core.Job, head *core.HeadState,
	pick func(*core.Task) (core.NodeID, bool)) []core.Assignment {
	var out []core.Assignment
	for _, j := range jobs {
		for i := range j.Tasks {
			t := &j.Tasks[i]
			if t.Assigned {
				continue
			}
			k, ok := pick(t)
			if !ok {
				return out
			}
			t.Assigned = true
			head.CommitAssign(t, k, now)
			out = append(out, core.Assignment{Task: t, Node: k})
		}
	}
	return out
}

// FCFS schedules jobs in arrival order, placing each task on the node with
// the smallest available time. No locality awareness: a chunk lands wherever
// the queue is shortest, so repeated renders of the same data keep paying
// disk I/O.
type FCFS struct{}

// Name implements core.Scheduler.
func (FCFS) Name() string { return "FCFS" }

// Trigger implements core.Scheduler.
func (FCFS) Trigger() core.Trigger { return core.OnArrival }

// Cycle implements core.Scheduler.
func (FCFS) Cycle() units.Duration { return 0 }

// Schedule implements core.Scheduler.
func (FCFS) Schedule(now units.Time, queue []*core.Job, head *core.HeadState) []core.Assignment {
	return assignAll(now, queue, head, func(*core.Task) (core.NodeID, bool) {
		return greedyNode(head)
	})
}

// FCFSL is FCFS with data locality in the greedy search: a task prefers the
// node where its completion — including any reload — would be earliest,
// which usually means the node caching its chunk.
type FCFSL struct{}

// Name implements core.Scheduler.
func (FCFSL) Name() string { return "FCFSL" }

// Trigger implements core.Scheduler.
func (FCFSL) Trigger() core.Trigger { return core.OnArrival }

// Cycle implements core.Scheduler.
func (FCFSL) Cycle() units.Duration { return 0 }

// Schedule implements core.Scheduler.
func (FCFSL) Schedule(now units.Time, queue []*core.Job, head *core.HeadState) []core.Assignment {
	return assignAll(now, queue, head, func(t *core.Task) (core.NodeID, bool) {
		return localNode(now, t, head)
	})
}

// FCFSU is FCFS with a uniform data partition: every dataset is split into
// exactly one chunk per rendering node and task i always runs on node i.
// Perfect, trivial data reuse — but every job occupies the whole cluster.
type FCFSU struct{}

// Name implements core.Scheduler.
func (FCFSU) Name() string { return "FCFSU" }

// Trigger implements core.Scheduler.
func (FCFSU) Trigger() core.Trigger { return core.OnArrival }

// Cycle implements core.Scheduler.
func (FCFSU) Cycle() units.Duration { return 0 }

// Decomposition implements core.DecompositionOverrider.
func (FCFSU) Decomposition(nodes int) volume.Decomposition {
	return volume.Uniform{N: nodes}
}

// Schedule implements core.Scheduler.
func (FCFSU) Schedule(now units.Time, queue []*core.Job, head *core.HeadState) []core.Assignment {
	p := head.Nodes()
	return assignAll(now, queue, head, func(t *core.Task) (core.NodeID, bool) {
		k := core.NodeID(t.Index % p)
		if head.Alive(k) {
			return k, true
		}
		// Fixed mapping has no alternative placement; fall back to greedy so
		// a crashed node does not wedge the whole service.
		return greedyNode(head)
	})
}

// SF (Shortest-First) gathers the jobs queued within each scheduling window
// and runs the cheapest ones first — classic mean-latency optimization with
// no locality awareness.
type SF struct {
	Window units.Duration
}

// NewSF returns a Shortest-First scheduler; non-positive windows select the
// default cycle.
func NewSF(window units.Duration) *SF {
	if window <= 0 {
		window = core.DefaultCycle
	}
	return &SF{Window: window}
}

// Name implements core.Scheduler.
func (*SF) Name() string { return "SF" }

// Trigger implements core.Scheduler.
func (*SF) Trigger() core.Trigger { return core.Periodic }

// Cycle implements core.Scheduler.
func (s *SF) Cycle() units.Duration { return s.Window }

// Schedule implements core.Scheduler.
func (s *SF) Schedule(now units.Time, queue []*core.Job, head *core.HeadState) []core.Assignment {
	// Estimate once per job up front: calling into the estimate table from
	// inside a comparator would re-price every job O(n log n) times.
	type jobEst struct {
		j   *core.Job
		est units.Duration
	}
	priced := make([]jobEst, 0, len(queue))
	for _, j := range queue {
		var sum units.Duration
		for i := range j.Tasks {
			t := &j.Tasks[i]
			if !t.Assigned {
				sum += head.Estimate(t.Chunk, t.Size, j.GroupSize())
			}
		}
		priced = append(priced, jobEst{j, sum})
	}
	slices.SortStableFunc(priced, func(a, b jobEst) int { return cmp.Compare(a.est, b.est) })
	ordered := make([]*core.Job, len(priced))
	for i, p := range priced {
		ordered[i] = p.j
	}
	return assignAll(now, ordered, head, func(*core.Task) (core.NodeID, bool) {
		return greedyNode(head)
	})
}

// FS (Fair-Sharing) allocates rendering capacity so that each action (user
// session or batch stream) receives an equal share of node time on average,
// the policy of Hadoop-style cluster schedulers [26]. Each cycle it releases
// all queued work in least-served-action-first order, so backlogged node
// queues interleave users fairly instead of first-come bursts.
type FS struct {
	Period units.Duration
	// service accumulates estimated node time granted per action.
	service map[core.ActionID]units.Duration
}

// NewFS returns a Fair-Sharing scheduler; non-positive periods select the
// default cycle.
func NewFS(period units.Duration) *FS {
	if period <= 0 {
		period = core.DefaultCycle
	}
	return &FS{Period: period, service: make(map[core.ActionID]units.Duration)}
}

// Name implements core.Scheduler.
func (*FS) Name() string { return "FS" }

// Trigger implements core.Scheduler.
func (*FS) Trigger() core.Trigger { return core.Periodic }

// Cycle implements core.Scheduler.
func (s *FS) Cycle() units.Duration { return s.Period }

// Schedule implements core.Scheduler.
func (s *FS) Schedule(now units.Time, queue []*core.Job, head *core.HeadState) []core.Assignment {
	ordered := append([]*core.Job(nil), queue...)
	slices.SortStableFunc(ordered, func(a, b *core.Job) int {
		return cmp.Compare(s.service[a.Action], s.service[b.Action])
	})
	var out []core.Assignment
	for _, j := range ordered {
		for i := range j.Tasks {
			t := &j.Tasks[i]
			if t.Assigned {
				continue
			}
			k, ok := greedyNode(head)
			if !ok {
				return out
			}
			t.Assigned = true
			exec := head.CommitAssign(t, k, now)
			s.service[j.Action] += exec
			out = append(out, core.Assignment{Task: t, Node: k})
		}
	}
	return out
}
