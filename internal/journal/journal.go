// Package journal is the head's append-only mutation log: every dispatch
// decision that changes recoverable state is written as one CRC-guarded
// record before (or atomically with) its effect becoming externally
// visible. A restarted or warm-standby head replays the journal on top of
// the last snapshot to rebuild byte-identical dispatch tables.
//
// Wire format, per record:
//
//	[4B big-endian payload length][4B big-endian CRC32(payload)][payload]
//	payload = [1B kind][8B job][4B task][4B node][8B at][body bytes]
//
// The format is deliberately the same shape as the transport's frame codec:
// length first so a reader never over-reads, CRC next so corruption is
// detected before interpretation. A torn tail — the partial record of a
// crash mid-write — fails either the length read or the CRC and terminates
// replay cleanly at the last durable record, which is exactly the
// write-ahead-logging contract.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Kind tags one journal record.
type Kind uint8

// Record kinds. The zero value is invalid so a zeroed torn tail can never
// masquerade as a real record.
const (
	// KindAdmit logs a job entering the head's queue (body: the job spec).
	KindAdmit Kind = iota + 1
	// KindDispatch logs one task committed to a node (body: dispatch facts).
	KindDispatch
	// KindComplete logs one task's completion facts as acknowledged to the
	// worker (body: observed exec, hit, evictions).
	KindComplete
	// KindFail logs a job abandoned by the head.
	KindFail
	// KindRehome logs a node declared down with its chunks re-homed.
	KindRehome
	// KindRepair logs a node rejoining after KindRehome.
	KindRepair
	// KindSuspect logs a node health demotion to suspect.
	KindSuspect
	// KindUp logs a node health promotion back to up.
	KindUp
	// KindPrefetch logs a completed prefetch warm (body: chunk + evictions).
	KindPrefetch
	// KindResync logs a reconnecting worker's cache re-announcement adopted
	// wholesale during a resync epoch (body: the announced entries).
	KindResync
	kindMax
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAdmit:
		return "admit"
	case KindDispatch:
		return "dispatch"
	case KindComplete:
		return "complete"
	case KindFail:
		return "fail"
	case KindRehome:
		return "rehome"
	case KindRepair:
		return "repair"
	case KindSuspect:
		return "suspect"
	case KindUp:
		return "up"
	case KindPrefetch:
		return "prefetch"
	case KindResync:
		return "resync"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Record is one journaled mutation. Job/Task/Node/At are the fields every
// consumer needs for sequencing; Body carries kind-specific facts encoded
// by the owner of the record (the service layer), opaque to this package.
type Record struct {
	Kind Kind
	Job  uint64
	Task int32
	Node int32
	At   int64 // virtual or wall nanoseconds, owner-defined
	Body []byte
}

const headerLen = 8               // length + CRC
const metaLen = 1 + 8 + 4 + 4 + 8 // kind + job + task + node + at

// MaxRecordSize bounds one record's payload — a corrupt length prefix must
// not trigger an unbounded allocation during replay.
var MaxRecordSize = uint32(64 << 20)

// ErrCorrupt reports a record that failed its CRC or structural checks.
var ErrCorrupt = errors.New("journal: corrupt record")

// Syncer is the durability hook of a Writer (an *os.File in production).
type Syncer interface{ Sync() error }

// Writer appends records to w, fsync-batched: records accumulate in an
// in-memory buffer and are flushed + synced every BatchSize appends or on
// an explicit Sync/Close. Batching amortizes the fsync cost across bursts
// of dispatch records — the classic group-commit trade: at most the last
// BatchSize-1 records can be lost to a crash, and the CRC framing
// guarantees the survivors replay cleanly.
type Writer struct {
	w     io.Writer
	sync  Syncer
	buf   []byte
	count int
	// BatchSize is the number of appended records that forces a flush +
	// fsync. 1 makes every record durable before Append returns.
	BatchSize int
	scratch   [headerLen + metaLen]byte
}

// NewWriter returns a Writer appending to w. If w implements Syncer (an
// *os.File does), flushed batches are fsynced. batch < 1 defaults to 32.
func NewWriter(w io.Writer, batch int) *Writer {
	if batch < 1 {
		batch = 32
	}
	jw := &Writer{w: w, BatchSize: batch}
	if s, ok := w.(Syncer); ok {
		jw.sync = s
	}
	return jw
}

// Append buffers one record, flushing (with fsync) when the batch fills.
func (jw *Writer) Append(r Record) error {
	if r.Kind == 0 || r.Kind >= kindMax {
		return fmt.Errorf("journal: append of invalid kind %d", r.Kind)
	}
	if uint64(metaLen+len(r.Body)) > uint64(MaxRecordSize) {
		return fmt.Errorf("journal: record body %dB exceeds limit %dB", len(r.Body), MaxRecordSize)
	}
	h := jw.scratch[:]
	h[8] = byte(r.Kind)
	binary.BigEndian.PutUint64(h[9:17], r.Job)
	binary.BigEndian.PutUint32(h[17:21], uint32(r.Task))
	binary.BigEndian.PutUint32(h[21:25], uint32(r.Node))
	binary.BigEndian.PutUint64(h[25:33], uint64(r.At))
	crc := crc32.ChecksumIEEE(h[headerLen:])
	crc = crc32.Update(crc, crc32.IEEETable, r.Body)
	binary.BigEndian.PutUint32(h[0:4], uint32(metaLen+len(r.Body)))
	binary.BigEndian.PutUint32(h[4:8], crc)
	jw.buf = append(jw.buf, h...)
	jw.buf = append(jw.buf, r.Body...)
	jw.count++
	if jw.count >= jw.BatchSize {
		return jw.Sync()
	}
	return nil
}

// Sync flushes the buffered batch and fsyncs when the sink supports it.
func (jw *Writer) Sync() error {
	if len(jw.buf) > 0 {
		if _, err := jw.w.Write(jw.buf); err != nil {
			return err
		}
		jw.buf = jw.buf[:0]
	}
	jw.count = 0
	if jw.sync != nil {
		return jw.sync.Sync()
	}
	return nil
}

// Close flushes; it does not close the underlying sink (the caller owns it).
func (jw *Writer) Close() error { return jw.Sync() }

// ReadAll replays every durable record from r in append order. A torn tail
// — truncation mid-record or a CRC mismatch on the final record — ends the
// replay cleanly with the records read so far and a nil error: that is the
// expected shape of a crash. Corruption in the middle of the log (valid
// records following the broken one) is reported as ErrCorrupt with the
// prefix that did replay, since silently dropping acknowledged records
// would violate durability.
func ReadAll(r io.Reader) ([]Record, error) {
	var recs []Record
	var hdr [headerLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return recs, nil
			}
			return recs, nil // torn header
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		want := binary.BigEndian.Uint32(hdr[4:8])
		if length < metaLen || length > MaxRecordSize {
			return tailOrCorrupt(r, recs)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return tailOrCorrupt(r, recs)
		}
		kind := Kind(payload[0])
		if kind == 0 || kind >= kindMax {
			return tailOrCorrupt(r, recs)
		}
		rec := Record{
			Kind: kind,
			Job:  binary.BigEndian.Uint64(payload[1:9]),
			Task: int32(binary.BigEndian.Uint32(payload[9:13])),
			Node: int32(binary.BigEndian.Uint32(payload[13:17])),
			At:   int64(binary.BigEndian.Uint64(payload[17:25])),
		}
		if len(payload) > metaLen {
			rec.Body = payload[metaLen:]
		}
		recs = append(recs, rec)
	}
}

// tailOrCorrupt classifies a broken record: if nothing readable follows it
// the log simply ends there (torn tail, tolerated); if more bytes follow,
// the middle of the log is damaged and the caller must know.
func tailOrCorrupt(r io.Reader, recs []Record) ([]Record, error) {
	var probe [1]byte
	if _, err := io.ReadFull(r, probe[:]); err != nil {
		return recs, nil
	}
	return recs, fmt.Errorf("%w: damaged record followed by %d+ trailing bytes after %d good records",
		ErrCorrupt, 1, len(recs))
}
