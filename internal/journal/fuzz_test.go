package journal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// journalSeed encodes records through the production Writer.
func journalSeed(recs ...Record) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// FuzzJournalReadAll drives replay with arbitrary byte streams and checks
// the WAL's recovery contract:
//
//   - never panics; the only error class is ErrCorrupt;
//   - torn tails are tolerated (nil error) while damage in the middle of
//     the log — a broken record with readable bytes after it — is
//     reported, never silently skipped;
//   - whatever prefix replays from arbitrary bytes re-encodes through the
//     Writer into a log that replays cleanly to the identical records
//     (prefix durability round trip);
//   - truncating a clean log anywhere inside its final record is always
//     classified as a torn tail, and corrupting an interior record of a
//     multi-record log is always classified as mid-log corruption.
func FuzzJournalReadAll(f *testing.F) {
	oldMax := MaxRecordSize
	MaxRecordSize = 1 << 20
	f.Cleanup(func() { MaxRecordSize = oldMax })

	f.Add([]byte{})
	f.Add(journalSeed(Record{Kind: KindAdmit, Job: 1, At: 10, Body: []byte("spec")}))
	f.Add(journalSeed(
		Record{Kind: KindDispatch, Job: 2, Task: 1, Node: 3, At: 20},
		Record{Kind: KindComplete, Job: 2, Task: 1, Node: 3, At: 30, Body: []byte("obs")},
		Record{Kind: KindRehome, Node: 3, At: 40},
	))
	// Torn tail: two records, last one missing a byte.
	torn := journalSeed(Record{Kind: KindAdmit, Job: 7}, Record{Kind: KindFail, Job: 7, Body: []byte("x")})
	f.Add(torn[:len(torn)-1])
	// Mid-log corruption: first record's payload flipped, second intact.
	mid := journalSeed(Record{Kind: KindAdmit, Job: 8}, Record{Kind: KindFail, Job: 8})
	mid[10] ^= 0xff
	f.Add(mid)
	// Zeroed torn tail masquerading as a record (invalid kind 0).
	f.Add(append(journalSeed(Record{Kind: KindUp, Node: 1}), make([]byte, 40)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unexpected error class: %v", err)
		}

		// Round trip: the replayed prefix must survive re-encode + replay
		// bit-exactly — this is the durability contract recovery rests on.
		clean := journalSeed(recs...)
		recs2, err2 := ReadAll(bytes.NewReader(clean))
		if err2 != nil {
			t.Fatalf("re-encoded log failed replay: %v", err2)
		}
		if len(recs) != len(recs2) || (len(recs) > 0 && !reflect.DeepEqual(recs, recs2)) {
			t.Fatalf("round trip diverged: %d records in, %d out", len(recs), len(recs2))
		}
		if len(recs) == 0 {
			return
		}

		// Torn-tail classification: truncating the clean log inside its
		// final record must replay the remaining full records with nil
		// error — a crash mid-write never reads as corruption.
		lastStart := len(journalSeed(recs[:len(recs)-1]...))
		cut := lastStart + 1 + (len(clean)-lastStart-1)/2
		tornRecs, tornErr := ReadAll(bytes.NewReader(clean[:cut]))
		if tornErr != nil {
			t.Fatalf("torn tail misclassified as corruption: %v", tornErr)
		}
		if len(tornRecs) != len(recs)-1 {
			t.Fatalf("torn tail replayed %d records, want %d", len(tornRecs), len(recs)-1)
		}

		// Mid-log classification: breaking an interior record's CRC while
		// later records remain readable must surface ErrCorrupt — dropping
		// acknowledged records silently would violate durability.
		if len(recs) >= 2 {
			bad := append([]byte(nil), clean...)
			bad[headerLen+1] ^= 0xff // first record's payload, past its length prefix
			_, badErr := ReadAll(bytes.NewReader(bad))
			if !errors.Is(badErr, ErrCorrupt) {
				t.Fatalf("mid-log corruption not reported: %v", badErr)
			}
		}
	})
}
