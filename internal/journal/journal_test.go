package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sample(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		r := Record{
			Kind: Kind(1 + i%int(kindMax-1)),
			Job:  uint64(i / 3),
			Task: int32(i % 7),
			Node: int32(i % 4),
			At:   int64(i) * 1_000_000,
		}
		if i%2 == 0 {
			r.Body = bytes.Repeat([]byte{byte(i)}, 1+i%5)
		}
		recs = append(recs, r)
	}
	return recs
}

func mustEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Job != w.Job || g.Task != w.Task || g.Node != w.Node || g.At != w.At ||
			!bytes.Equal(g.Body, w.Body) {
			t.Fatalf("record %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, 4)
	want := sample(23)
	for _, r := range want {
		if err := jw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, want)
}

func TestJournalBatchingHoldsUntilSync(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, 8)
	for _, r := range sample(5) {
		if err := jw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("batch of 8 flushed after 5 appends (%d bytes)", buf.Len())
	}
	if err := jw.Sync(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("Sync did not flush")
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 5 {
		t.Fatalf("got %d records err=%v", len(got), err)
	}
}

type countingSyncer struct {
	bytes.Buffer
	syncs int
}

func (c *countingSyncer) Sync() error { c.syncs++; return nil }

func TestJournalFsyncAmortizedPerBatch(t *testing.T) {
	sink := &countingSyncer{}
	jw := NewWriter(sink, 4)
	for _, r := range sample(12) {
		if err := jw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if sink.syncs != 3 {
		t.Fatalf("12 appends at batch 4 fsynced %d times, want 3", sink.syncs)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, 1)
	want := sample(9)
	for _, r := range want {
		if err := jw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	// Every possible truncation point must replay a clean prefix.
	for cut := len(full) - 1; cut > 0; cut-- {
		got, err := ReadAll(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("truncation at %d/%d: %v", cut, len(full), err)
		}
		mustEqual(t, got, want[:len(got)])
	}
}

func TestJournalDetectsMidLogCorruption(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, 1)
	for _, r := range sample(6) {
		if err := jw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	full := append([]byte(nil), buf.Bytes()...)
	full[len(full)/2] ^= 0xff
	_, err := ReadAll(bytes.NewReader(full))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption not detected: %v", err)
	}
}

func TestJournalRejectsInvalidAppends(t *testing.T) {
	jw := NewWriter(&bytes.Buffer{}, 1)
	if err := jw.Append(Record{Kind: 0}); err == nil {
		t.Error("zero kind accepted")
	}
	if err := jw.Append(Record{Kind: kindMax}); err == nil {
		t.Error("out-of-range kind accepted")
	}
	old := MaxRecordSize
	MaxRecordSize = 64
	defer func() { MaxRecordSize = old }()
	if err := jw.Append(Record{Kind: KindAdmit, Body: make([]byte, 128)}); err == nil {
		t.Error("oversized body accepted")
	}
}

func TestJournalOnDiskFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jw := NewWriter(f, 2)
	want := sample(7)
	for _, r := range want {
		if err := jw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, got, want)
}

func TestKindStrings(t *testing.T) {
	for k := KindAdmit; k < kindMax; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("kind %d has no name: %q", k, s)
		}
	}
}
