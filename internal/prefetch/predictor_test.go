package prefetch

import (
	"reflect"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func cid(ds, idx int) volume.ChunkID {
	return volume.ChunkID{Dataset: volume.DatasetID(ds), Index: idx}
}

func at(s float64) units.Time { return units.Time(float64(units.Second) * s) }

// An action walking indexes 0,1,2 within a dataset should predict index 3
// as the top candidate.
func TestPredictorOrder1Continuation(t *testing.T) {
	p := NewPredictor(nil)
	for i := 0; i < 3; i++ {
		p.Observe(1, cid(0, i), at(float64(i)))
	}
	cands := p.Candidates(at(2.5), 8)
	if len(cands) == 0 {
		t.Fatal("no candidates after a 3-chunk run")
	}
	if cands[0].Chunk != cid(0, 3) {
		t.Fatalf("top candidate = %v, want %v", cands[0].Chunk, cid(0, 3))
	}
}

// With order 2 enabled, a zig-zag stream (+1,+2,+1,+2,...) should use the
// two-delta context to pick the right continuation, where order 1 alone
// would mix both deltas.
func TestPredictorOrder2Context(t *testing.T) {
	p := NewPredictor(&Config{Order: 2})
	// Indexes: 0,1,3,4,6,7,9 -> deltas +1,+2,+1,+2,+1,+2. After trailing
	// (+1,+2) the learned continuation is +1 -> index 10.
	idxs := []int{0, 1, 3, 4, 6, 7, 9}
	for i, idx := range idxs {
		p.Observe(1, cid(0, idx), at(float64(i)))
	}
	cands := p.Candidates(at(6.5), 8)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].Chunk != cid(0, 10) {
		t.Fatalf("top candidate = %v, want %v (order-2 continuation)", cands[0].Chunk, cid(0, 10))
	}
}

// A dataset-sweep stream (ds+1, idx fixed) predicts the next dataset's
// chunk — the BatchTimeSeries shape.
func TestPredictorDatasetSweep(t *testing.T) {
	p := NewPredictor(nil)
	for i := 0; i < 4; i++ {
		p.Observe(7, cid(i, 2), at(float64(i)))
	}
	cands := p.Candidates(at(3.5), 8)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].Chunk != cid(4, 2) {
		t.Fatalf("top candidate = %v, want %v", cands[0].Chunk, cid(4, 2))
	}
}

// Identical observation sequences must yield identical rankings — the
// simulator's determinism depends on it.
func TestPredictorDeterministicRanking(t *testing.T) {
	build := func() []Candidate {
		p := NewPredictor(nil)
		seq := []struct {
			a core.ActionID
			c volume.ChunkID
		}{
			{1, cid(0, 0)}, {2, cid(3, 1)}, {1, cid(0, 1)}, {2, cid(3, 2)},
			{1, cid(0, 2)}, {3, cid(5, 0)}, {2, cid(3, 3)}, {3, cid(5, 1)},
			{1, cid(0, 3)}, {3, cid(5, 2)},
		}
		for i, o := range seq {
			p.Observe(o.a, o.c, at(float64(i)*0.3))
		}
		return p.Candidates(at(3.0), 16)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("rankings differ across identical runs:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("expected candidates from a mixed stream")
	}
}

// Streams older than StreamTTL stop contributing Markov continuations but
// the frequency prior persists (decayed).
func TestPredictorStreamTTLExpiry(t *testing.T) {
	p := NewPredictor(&Config{StreamTTL: units.Second})
	for i := 0; i < 3; i++ {
		p.Observe(1, cid(0, i), at(float64(i)*0.1))
	}
	// Just after the run: continuation present.
	fresh := p.Candidates(at(0.3), 8)
	found := false
	for _, c := range fresh {
		if c.Chunk == cid(0, 3) {
			found = true
		}
	}
	if !found {
		t.Fatal("live stream should predict its continuation")
	}
	// Well past TTL: the never-observed continuation chunk must be gone.
	stale := p.Candidates(at(10), 8)
	for _, c := range stale {
		if c.Chunk == cid(0, 3) {
			t.Fatalf("expired stream still predicting continuation: %v", stale)
		}
	}
}

// The EMA prior decays: a chunk hot long ago ranks below a chunk hot now.
func TestPredictorFrequencyDecay(t *testing.T) {
	p := NewPredictor(&Config{HalfLife: 2 * units.Second})
	// Old-hot chunk: 4 touches at t=0, distinct actions so no Markov stream forms.
	for i := 0; i < 4; i++ {
		p.Observe(core.ActionID(10+i), cid(0, 0), at(0))
	}
	// Recent chunk: 2 touches at t=10.
	for i := 0; i < 2; i++ {
		p.Observe(core.ActionID(20+i), cid(1, 0), at(10))
	}
	cands := p.Candidates(at(10), 8)
	if len(cands) < 2 {
		t.Fatalf("want both chunks in candidates, got %v", cands)
	}
	if cands[0].Chunk != cid(1, 0) {
		t.Fatalf("recent chunk should outrank decayed one, got %v first", cands[0].Chunk)
	}
}

// Self-transitions (delta 0,0 — repeated touches of the same chunk) never
// propose the chunk the stream is already on.
func TestPredictorSkipsSelfTransition(t *testing.T) {
	p := NewPredictor(&Config{PriorWeight: -1}) // isolate the Markov part
	for i := 0; i < 5; i++ {
		p.Observe(1, cid(0, 0), at(float64(i)))
	}
	for _, c := range p.Candidates(at(4.5), 8) {
		if c.Chunk == cid(0, 0) {
			t.Fatal("self-transition proposed the current chunk")
		}
	}
}
