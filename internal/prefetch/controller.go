package prefetch

import (
	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Controller glues predictor and governor into a core.PrefetchPlanner: one
// instance per engine or live head, wired into the scheduler with
// core.PrefetchSetter and trained by the execution layer's completion
// stream. Not safe for concurrent use; its owner serializes access the
// same way it serializes Schedule calls.
type Controller struct {
	cfg    Config
	pred   *Predictor
	gov    *Governor
	sizeOf func(volume.ChunkID) units.Bytes

	// inflight tracks the (at most one) warm each node is running;
	// inflightChunk counts in-flight warms per chunk so two nodes never
	// warm the same chunk concurrently.
	inflight      map[core.NodeID]volume.ChunkID
	inflightChunk map[volume.ChunkID]int

	// churned tracks chunks a warm landing displaced from each node since
	// the node last completed demand work. A displaced chunk immediately
	// becomes a top-ranked non-resident candidate, so without this guard a
	// long idle window lets warm → evict → re-warm cycles rotate the entire
	// cache, wasting the whole gap's bandwidth. Demand completions clear it:
	// real work re-anchors what is worth keeping.
	churned map[core.NodeID]map[volume.ChunkID]bool

	issued    int64
	loaded    int64
	cancelled int64
	bytes     units.Bytes

	scratch []core.PrefetchDirective
}

// NewController builds the prefetching layer for n nodes. sizeOf resolves a
// candidate chunk to its byte size, returning 0 for chunks that do not
// exist (the predictor may extrapolate past a dataset edge); the engine
// backs it with the library, the live head with its manifest catalog.
// A nil cfg selects all defaults.
func NewController(cfg *Config, n int, sizeOf func(volume.ChunkID) units.Bytes) *Controller {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	c = c.withDefaults()
	return &Controller{
		cfg:           c,
		pred:          NewPredictor(&c),
		gov:           NewGovernor(n, c.RateBytesPerSec, c.Burst),
		sizeOf:        sizeOf,
		inflight:      make(map[core.NodeID]volume.ChunkID),
		inflightChunk: make(map[volume.ChunkID]int),
		churned:       make(map[core.NodeID]map[volume.ChunkID]bool),
	}
}

// Predictor exposes the trained predictor for tests and introspection.
func (c *Controller) Predictor() *Predictor { return c.pred }

// Governor exposes the bandwidth governor for tests and introspection.
func (c *Controller) Governor() *Governor { return c.gov }

// Observe trains the predictor with one completed task. It also clears the
// churn guard: demand work re-anchors the caches, so chunks a warm once
// displaced become fair candidates again.
func (c *Controller) Observe(action core.ActionID, chunk volume.ChunkID, now units.Time) {
	c.pred.Observe(action, chunk, now)
	clear(c.churned)
}

// NoteEvicted records that landing a warm displaced chunk from node k. The
// execution layer calls it for every eviction a cold insert causes; Plan
// refuses to re-warm such a chunk onto the same node until demand work runs
// again, breaking warm/evict rotation cycles in long idle windows.
func (c *Controller) NoteEvicted(k core.NodeID, chunk volume.ChunkID) {
	set := c.churned[k]
	if set == nil {
		set = make(map[volume.ChunkID]bool)
		c.churned[k] = set
	}
	set[chunk] = true
}

// Plan implements core.PrefetchPlanner. It runs at the end of Schedule,
// after every demand assignment has been committed to the head tables, so
// the idle test below sees the cycle's true leftover capacity: a node is a
// warming target only if its predicted queue drains inside [now, λ) and it
// has been free of interactive work for the ε-style guard Estimate[c]/2 —
// the same idleness reasoning Algorithm 1 applies to non-cached batch,
// reusing the same Estimate table.
func (c *Controller) Plan(now, lambda units.Time, head *core.HeadState) []core.PrefetchDirective {
	out := c.scratch[:0]
	for _, cand := range c.pred.Candidates(now, c.cfg.TopK) {
		size := c.sizeOf(cand.Chunk)
		if size <= 0 {
			continue // extrapolated past a dataset edge
		}
		if c.inflightChunk[cand.Chunk] > 0 {
			continue // already warming somewhere
		}
		if head.ReplicaCount(cand.Chunk) > 0 {
			continue // already predicted resident
		}
		guard := head.IdleThreshold(cand.Chunk, size, 1)
		best := core.NodeID(-1)
		for k := 0; k < head.Nodes(); k++ {
			node := core.NodeID(k)
			if !head.Alive(node) {
				continue
			}
			if _, busy := c.inflight[node]; busy {
				continue
			}
			if !head.Available[k].Before(lambda) {
				continue // demand work fills past λ: no idle window
			}
			if c.churned[node][cand.Chunk] {
				continue // a warm displaced it here; re-warming would cycle
			}
			if head.InteractiveIdle(node, now) <= guard {
				continue // served interactive work too recently
			}
			if best < 0 || head.Available[k] < head.Available[best] {
				best = node
			}
		}
		if best < 0 {
			continue
		}
		if !c.gov.Allow(best, size, now) {
			continue
		}
		c.inflight[best] = cand.Chunk
		c.inflightChunk[cand.Chunk]++
		c.issued++
		c.bytes += size
		out = append(out, core.PrefetchDirective{Node: best, Chunk: cand.Chunk, Size: size})
	}
	c.scratch = out
	return out
}

// Evacuate plans drain pre-warms (§5.12): directives that copy a draining
// node's would-be-orphan chunks onto survivors before the node leaves. It
// keeps Plan's safety rails — one warm per node, never a resident or
// already-warming chunk, every load priced through the same bandwidth
// governor — but skips the idle-window and churn guards: a drain is a
// deliberate, bounded evacuation, not an opportunistic fill, so it may use
// any alive node's next capacity. Chunks the governor refuses (or that find
// no eligible node) are left out; the drain loop re-offers them on its next
// tick until the working set is safe. exclude is the draining node, belt
// and braces on top of its not-Alive health state.
func (c *Controller) Evacuate(now units.Time, chunks []volume.ChunkID, head *core.HeadState, exclude core.NodeID) []core.PrefetchDirective {
	var out []core.PrefetchDirective
	for _, chunk := range chunks {
		size := c.sizeOf(chunk)
		if size <= 0 {
			continue
		}
		if c.inflightChunk[chunk] > 0 {
			continue // already warming somewhere
		}
		if head.ReplicaCount(chunk) > 0 {
			continue // a survivor already holds it
		}
		best := core.NodeID(-1)
		for k := 0; k < head.Nodes(); k++ {
			node := core.NodeID(k)
			if node == exclude || !head.Alive(node) {
				continue
			}
			if _, busy := c.inflight[node]; busy {
				continue
			}
			if best < 0 || head.Available[k] < head.Available[best] {
				best = node
			}
		}
		if best < 0 {
			continue
		}
		if !c.gov.Allow(best, size, now) {
			continue
		}
		c.inflight[best] = chunk
		c.inflightChunk[chunk]++
		c.issued++
		c.bytes += size
		out = append(out, core.PrefetchDirective{Node: best, Chunk: chunk, Size: size})
	}
	return out
}

// Warmup plans one bring-up pre-warm (§5.12): a directive copying the
// predictor's hottest candidate onto a newly (re)activated node, so the node
// joins the fleet warm instead of paying demand misses on the interactive
// path. The selection inverts Plan's replica test — a resident replica
// elsewhere is exactly what makes a chunk worth copying, since bring-up adds
// a replica of the hot working set — so only residency on the target node
// itself disqualifies a candidate. Everything else keeps the usual rails:
// one warm per node, never a chunk already warming somewhere, the churn
// guard against warm/evict rotation, and the same bandwidth governor pricing
// every load. Callers re-offer on each control tick for the configured
// warm-up window; a false return means the node is busy warming, out of
// governed bandwidth, or already holds everything worth holding.
func (c *Controller) Warmup(now units.Time, k core.NodeID, head *core.HeadState) (core.PrefetchDirective, bool) {
	if !head.Alive(k) {
		return core.PrefetchDirective{}, false
	}
	if _, busy := c.inflight[k]; busy {
		return core.PrefetchDirective{}, false
	}
	for _, cand := range c.pred.Candidates(now, c.cfg.TopK) {
		size := c.sizeOf(cand.Chunk)
		if size <= 0 {
			continue // extrapolated past a dataset edge
		}
		if c.inflightChunk[cand.Chunk] > 0 {
			continue // already warming somewhere
		}
		if head.Caches[k].Contains(cand.Chunk) {
			continue // the new node already holds it
		}
		if c.churned[k][cand.Chunk] {
			continue // a warm displaced it here; re-warming would cycle
		}
		if !c.gov.Allow(k, size, now) {
			return core.PrefetchDirective{}, false // out of budget this tick
		}
		c.inflight[k] = cand.Chunk
		c.inflightChunk[cand.Chunk]++
		c.issued++
		c.bytes += size
		return core.PrefetchDirective{Node: k, Chunk: cand.Chunk, Size: size}, true
	}
	return core.PrefetchDirective{}, false
}

// settle clears node k's in-flight record if it matches the chunk.
func (c *Controller) settle(k core.NodeID, chunk volume.ChunkID) bool {
	cur, ok := c.inflight[k]
	if !ok || cur != chunk {
		return false
	}
	delete(c.inflight, k)
	if n := c.inflightChunk[chunk]; n <= 1 {
		delete(c.inflightChunk, chunk)
	} else {
		c.inflightChunk[chunk] = n - 1
	}
	return true
}

// Loaded records a warm that completed and entered node k's cache.
func (c *Controller) Loaded(k core.NodeID, chunk volume.ChunkID) {
	if c.settle(k, chunk) {
		c.loaded++
	}
}

// Cancel records a warm abandoned before completion: the node was busy,
// failed, or the chunk turned out resident.
func (c *Controller) Cancel(k core.NodeID, chunk volume.ChunkID) {
	if c.settle(k, chunk) {
		c.cancelled++
	}
}

// Absorbed records a warm cancelled because a demand task for the same
// chunk arrived and absorbed the in-flight load (counted as a hidden hit by
// the head tables, and as a cancellation here — the warm itself never
// finished).
func (c *Controller) Absorbed(k core.NodeID, chunk volume.ChunkID) {
	c.Cancel(k, chunk)
}

// FailNode abandons whatever warm node k had in flight (crash/stall).
func (c *Controller) FailNode(k core.NodeID) {
	if chunk, ok := c.inflight[k]; ok {
		c.Cancel(k, chunk)
	}
	delete(c.churned, k)
}

// InFlight reports the warm node k is currently running, if any.
func (c *Controller) InFlight(k core.NodeID) (volume.ChunkID, bool) {
	chunk, ok := c.inflight[k]
	return chunk, ok
}

// Outcome summarizes the run, folding in the head tables' accuracy
// counters.
func (c *Controller) Outcome(head *core.HeadState) *metrics.PrefetchOutcome {
	hits, hidden, wasted := head.PrefetchAccuracy()
	return &metrics.PrefetchOutcome{
		Issued:     c.issued,
		Loaded:     c.loaded,
		Cancelled:  c.cancelled,
		Hits:       hits,
		HiddenHits: hidden,
		Wasted:     wasted,
		BytesMoved: c.bytes,
	}
}
