package prefetch

import (
	"cmp"
	"math"
	"slices"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// delta is the step between two consecutive chunks in an action's
// footprint stream. Dataset and index move independently: an interactive
// orbit walks indexes within one dataset (ds=0), a time-series sweep steps
// datasets (ds=+1), and the Markov table learns whichever mixture the
// workload exhibits.
type delta struct {
	ds  int
	idx int
}

// trans2Key conditions a transition on the last two deltas (order 2);
// older first.
type trans2Key struct {
	d2, d1 delta
}

// dist is one transition table row: counts per next-delta.
type dist struct {
	total  int64
	counts map[delta]int64
}

func (d *dist) bump(next delta) {
	if d.counts == nil {
		d.counts = make(map[delta]int64)
	}
	d.counts[next]++
	d.total++
}

// top returns the row's n most likely next deltas, ties broken toward the
// smaller delta so identical tables always rank identically.
func (d *dist) top(n int) []delta {
	keys := make([]delta, 0, len(d.counts))
	for k := range d.counts {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b delta) int {
		if c := cmp.Compare(d.counts[b], d.counts[a]); c != 0 {
			return c
		}
		if c := cmp.Compare(a.ds, b.ds); c != 0 {
			return c
		}
		return cmp.Compare(a.idx, b.idx)
	})
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// stream is one action's footprint state: the last chunk seen and the last
// two deltas, enough to key both Markov orders.
type stream struct {
	last   volume.ChunkID
	d1, d2 delta
	have   int // chunks observed, saturating at 3
	seen   units.Time
}

// emaEntry is one chunk's decayed access frequency, decayed lazily at
// read/write time so idle chunks cost nothing.
type emaEntry struct {
	val float64
	at  units.Time
}

// Candidate is one ranked prefetch suggestion.
type Candidate struct {
	Chunk volume.ChunkID
	Score float64
}

// Predictor learns the workload's chunk-access structure online and emits
// ranked candidates. It is deterministic: identical observation sequences
// produce identical candidate rankings (all map iterations are sorted).
// Not safe for concurrent use; its owner (engine or head dispatcher)
// serializes access.
type Predictor struct {
	cfg     Config
	t1      map[delta]*dist
	t2      map[trans2Key]*dist
	streams map[core.ActionID]*stream
	freqs   map[volume.ChunkID]*emaEntry

	observed int64
}

// NewPredictor builds an empty predictor; nil selects all defaults.
func NewPredictor(cfg *Config) *Predictor {
	c := Config{}
	if cfg != nil {
		c = *cfg
	}
	return &Predictor{
		cfg:     c.withDefaults(),
		t1:      make(map[delta]*dist),
		t2:      make(map[trans2Key]*dist),
		streams: make(map[core.ActionID]*stream),
		freqs:   make(map[volume.ChunkID]*emaEntry),
	}
}

// Observed returns the number of Observe calls, for reporting.
func (p *Predictor) Observed() int64 { return p.observed }

// decayTo folds the exponential decay since the entry's last update.
func (p *Predictor) decayTo(e *emaEntry, now units.Time) {
	if dt := now.Sub(e.at); dt > 0 {
		e.val *= math.Exp2(-dt.Seconds() / p.cfg.HalfLife.Seconds())
		e.at = now
	}
}

// Observe trains the predictor with one completed task's chunk: bumps the
// frequency prior and extends the action's delta stream through the Markov
// tables. Call it in completion order — virtual time in the simulator,
// fragment arrival in the live head — so runs are reproducible.
func (p *Predictor) Observe(action core.ActionID, c volume.ChunkID, now units.Time) {
	p.observed++
	e := p.freqs[c]
	if e == nil {
		e = &emaEntry{at: now}
		p.freqs[c] = e
	}
	p.decayTo(e, now)
	e.val++

	st := p.streams[action]
	if st == nil {
		st = &stream{}
		p.streams[action] = st
	}
	st.seen = now
	if st.have > 0 {
		d := delta{ds: int(c.Dataset - st.last.Dataset), idx: c.Index - st.last.Index}
		if st.have >= 2 {
			row := p.t1[st.d1]
			if row == nil {
				row = &dist{}
				p.t1[st.d1] = row
			}
			row.bump(d)
		}
		if p.cfg.Order >= 2 && st.have >= 3 {
			key := trans2Key{d2: st.d2, d1: st.d1}
			row := p.t2[key]
			if row == nil {
				row = &dist{}
				p.t2[key] = row
			}
			row.bump(d)
		}
		st.d2, st.d1 = st.d1, d
	}
	st.last = c
	if st.have < 3 {
		st.have++
	}
}

// apply steps a chunk by a delta.
func apply(c volume.ChunkID, d delta) volume.ChunkID {
	return volume.ChunkID{Dataset: c.Dataset + volume.DatasetID(d.ds), Index: c.Index + d.idx}
}

// Candidates returns up to limit candidate chunks ranked by score
// (descending, chunk ID breaking ties): Markov continuations of every live
// stream blended with the decayed frequency prior. Candidates may name
// chunks that do not exist (a delta stepping past a dataset edge) — the
// controller's size lookup filters those.
func (p *Predictor) Candidates(now units.Time, limit int) []Candidate {
	scores := make(map[volume.ChunkID]float64)

	// Markov continuations, streams visited in action order for determinism.
	acts := make([]core.ActionID, 0, len(p.streams))
	for a, st := range p.streams {
		if now.Sub(st.seen) <= units.Duration(p.cfg.StreamTTL) {
			acts = append(acts, a)
		}
	}
	slices.Sort(acts)
	for _, a := range acts {
		st := p.streams[a]
		var row *dist
		if p.cfg.Order >= 2 && st.have >= 3 {
			row = p.t2[trans2Key{d2: st.d2, d1: st.d1}]
		}
		if row == nil && st.have >= 2 {
			row = p.t1[st.d1]
		}
		if row == nil || row.total == 0 {
			continue
		}
		for _, d := range row.top(2) {
			next := apply(st.last, d)
			if next == st.last {
				continue // self-transition: already being demanded
			}
			scores[next] += p.cfg.MarkovWeight * float64(row.counts[d]) / float64(row.total)
		}
	}

	// Frequency prior, normalized by the hottest chunk.
	chunks := make([]volume.ChunkID, 0, len(p.freqs))
	maxVal := 0.0
	for c, e := range p.freqs {
		p.decayTo(e, now)
		if e.val > maxVal {
			maxVal = e.val
		}
		chunks = append(chunks, c)
	}
	if maxVal > 0 {
		slices.SortFunc(chunks, chunkCompare)
		for _, c := range chunks {
			if v := p.freqs[c].val / maxVal; v > 0 {
				scores[c] += p.cfg.PriorWeight * v
			}
		}
	}

	out := make([]Candidate, 0, len(scores))
	for c, s := range scores {
		if s >= p.cfg.MinScore {
			out = append(out, Candidate{Chunk: c, Score: s})
		}
	}
	slices.SortFunc(out, func(a, b Candidate) int {
		if c := cmp.Compare(b.Score, a.Score); c != 0 {
			return c
		}
		return chunkCompare(a.Chunk, b.Chunk)
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func chunkCompare(a, b volume.ChunkID) int {
	if c := cmp.Compare(a.Dataset, b.Dataset); c != 0 {
		return c
	}
	return cmp.Compare(a.Index, b.Index)
}
