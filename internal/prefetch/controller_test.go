package prefetch

import (
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

const testChunk = 64 * units.MB

// testSizeOf treats every dataset as 4 chunks of 64 MB.
func testSizeOf(c volume.ChunkID) units.Bytes {
	if c.Dataset < 0 || c.Index < 0 || c.Index >= 4 {
		return 0
	}
	return testChunk
}

func newTestController(n int) (*Controller, *core.HeadState) {
	ctl := NewController(nil, n, testSizeOf)
	head := core.NewHeadState(n, units.GB, core.System1CostModel())
	return ctl, head
}

// trainRun feeds the controller a straight index walk so the predictor has
// a confident continuation.
func trainRun(ctl *Controller, action core.ActionID, n int, now units.Time) volume.ChunkID {
	var last volume.ChunkID
	for i := 0; i < n; i++ {
		last = volume.ChunkID{Dataset: 0, Index: i}
		ctl.Observe(action, last, now)
	}
	return last
}

func TestPrefetchControllerPlansIdleNode(t *testing.T) {
	ctl, head := newTestController(2)
	trainRun(ctl, 1, 3, at(1))

	lambda := at(10)
	dirs := ctl.Plan(at(1), lambda, head)
	if len(dirs) == 0 {
		t.Fatal("no directives despite idle nodes and a confident predictor")
	}
	d := dirs[0]
	if d.Chunk != (volume.ChunkID{Dataset: 0, Index: 3}) {
		t.Fatalf("warmed %v, want the stream continuation {0 3}", d.Chunk)
	}
	if d.Size != testChunk {
		t.Fatalf("directive size = %v, want %v", d.Size, testChunk)
	}
	if _, busy := ctl.InFlight(d.Node); !busy {
		t.Fatal("planned node not tracked in flight")
	}

	// Same chunk is never planned twice while in flight.
	for _, d2 := range ctl.Plan(at(1), lambda, head) {
		if d2.Chunk == d.Chunk {
			t.Fatal("replanned a chunk already warming")
		}
	}

	// After Loaded the chunk is (simulated) resident; ReplicaCount guards it.
	ctl.Loaded(d.Node, d.Chunk)
	head.MarkPrefetched(d.Chunk, d.Node, d.Size)
	for _, d3 := range ctl.Plan(at(2), lambda, head) {
		if d3.Chunk == d.Chunk {
			t.Fatal("replanned a chunk already predicted resident")
		}
	}
}

func TestPrefetchControllerRespectsDemandBacklog(t *testing.T) {
	ctl, head := newTestController(2)
	trainRun(ctl, 1, 3, at(1))

	// Both nodes predicted busy past λ: no idle window anywhere.
	lambda := at(5)
	head.Available[0] = at(20)
	head.Available[1] = at(30)
	if dirs := ctl.Plan(at(1), lambda, head); len(dirs) != 0 {
		t.Fatalf("planned %d warms onto backlogged nodes", len(dirs))
	}

	// Free one node: warming resumes, on that node only.
	head.Available[1] = at(1)
	dirs := ctl.Plan(at(1), lambda, head)
	if len(dirs) == 0 {
		t.Fatal("no directives with an idle node available")
	}
	for _, d := range dirs {
		if d.Node != 1 {
			t.Fatalf("warm placed on backlogged node %d", d.Node)
		}
	}
}

func TestPrefetchControllerSkipsDeadNodes(t *testing.T) {
	ctl, head := newTestController(2)
	trainRun(ctl, 1, 3, at(1))
	head.MarkFailed(0)
	dirs := ctl.Plan(at(1), at(10), head)
	for _, d := range dirs {
		if d.Node == 0 {
			t.Fatal("warm placed on a down node")
		}
	}
	if len(dirs) == 0 {
		t.Fatal("surviving node got no warms")
	}
}

func TestPrefetchControllerGovernorGates(t *testing.T) {
	cfg := &Config{RateBytesPerSec: units.MB, Burst: testChunk}
	ctl := NewController(cfg, 1, testSizeOf)
	head := core.NewHeadState(1, units.GB, core.System1CostModel())
	// Two live streams on different datasets, each with a continuation, so
	// the planner would like to warm two chunks on the single node; the
	// burst only covers one.
	for i := 0; i < 3; i++ {
		ctl.Observe(1, volume.ChunkID{Dataset: 0, Index: i}, at(1))
		ctl.Observe(2, volume.ChunkID{Dataset: 1, Index: i}, at(1))
	}
	dirs := ctl.Plan(at(1), at(50), head)
	if len(dirs) != 1 {
		t.Fatalf("governor let through %d warms, bucket holds exactly 1", len(dirs))
	}
	// Settle it; the bucket is empty, so the next cycle plans nothing.
	ctl.Loaded(dirs[0].Node, dirs[0].Chunk)
	if extra := ctl.Plan(at(1), at(50), head); len(extra) != 0 {
		t.Fatalf("empty bucket still granted %d warms", len(extra))
	}
}

func TestPrefetchControllerLifecycleCounters(t *testing.T) {
	ctl, head := newTestController(4)
	trainRun(ctl, 1, 3, at(1))
	dirs := ctl.Plan(at(1), at(10), head)
	if len(dirs) == 0 {
		t.Fatal("no directives")
	}
	d := dirs[0]
	ctl.Cancel(d.Node, d.Chunk)
	if _, busy := ctl.InFlight(d.Node); busy {
		t.Fatal("cancelled warm still in flight")
	}
	// Settling twice is a safe no-op.
	ctl.Cancel(d.Node, d.Chunk)
	ctl.FailNode(d.Node)

	out := ctl.Outcome(head)
	if out.Issued != int64(len(dirs)) || out.Cancelled != 1 {
		t.Fatalf("outcome issued=%d cancelled=%d, want issued=%d cancelled=1",
			out.Issued, out.Cancelled, len(dirs))
	}
	if out.BytesMoved != units.Bytes(len(dirs))*testChunk {
		t.Fatalf("bytes moved = %v", out.BytesMoved)
	}
}

// MarkPrefetched + demand touch + eviction drive the head-side accuracy
// counters that Outcome folds in.
func TestPrefetchAccuracyAccounting(t *testing.T) {
	ctl, head := newTestController(2)
	a := volume.ChunkID{Dataset: 0, Index: 0}
	b := volume.ChunkID{Dataset: 0, Index: 1}
	c := volume.ChunkID{Dataset: 0, Index: 2}

	if !head.MarkPrefetched(a, 0, testChunk) {
		t.Fatal("MarkPrefetched refused with an empty cache")
	}
	head.MarkPrefetched(b, 0, testChunk)
	head.MarkPrefetched(c, 1, testChunk)

	if !head.IsPrefetched(a, 0) {
		t.Fatal("a not marked prefetched")
	}
	head.DemandTouchPrefetched(a, 0) // demand hit
	if head.IsPrefetched(a, 0) {
		t.Fatal("demand touch did not clear the mark")
	}
	head.NotePrefetchEvicted(b, 0) // evicted unused
	head.NotePrefetchHidden()      // absorbed in flight

	out := ctl.Outcome(head)
	if out.Hits != 1 || out.HiddenHits != 1 || out.Wasted != 1 {
		t.Fatalf("accuracy = hits %d hidden %d wasted %d, want 1/1/1",
			out.Hits, out.HiddenHits, out.Wasted)
	}
	// c on node 1 is still marked; a node failure wastes it.
	head.MarkFailed(1)
	if _, _, wasted := head.PrefetchAccuracy(); wasted != 2 {
		t.Fatalf("node failure did not waste its prefetched chunk: wasted=%d", wasted)
	}
}
