package prefetch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vizsched/internal/units"
)

func TestGovernorBurstThenRefill(t *testing.T) {
	g := NewGovernor(2, 10*units.MB, 100*units.MB)

	// Full bucket at boot: a burst-sized grant succeeds, the next is denied.
	if !g.Allow(0, 100*units.MB, at(0)) {
		t.Fatal("boot burst denied")
	}
	if g.Allow(0, units.MB, at(0)) {
		t.Fatal("empty bucket granted")
	}
	// Node 1's bucket is independent.
	if !g.Allow(1, 50*units.MB, at(0)) {
		t.Fatal("independent bucket denied")
	}
	// 3 s refill at 10 MB/s: 30 MB available, 31 MB denied.
	if g.Allow(0, 31*units.MB, at(3)) {
		t.Fatal("granted more than rate*dt after drain")
	}
	if !g.Allow(0, 30*units.MB, at(3)) {
		t.Fatal("denied exactly rate*dt after drain")
	}
}

func TestGovernorOversizeAlwaysDenied(t *testing.T) {
	g := NewGovernor(1, units.MB, 10*units.MB)
	if g.Allow(0, 11*units.MB, at(1e6)) {
		t.Fatal("granted a request larger than burst")
	}
}

func TestGovernorSubSecondRefill(t *testing.T) {
	g := NewGovernor(1, 100*units.MB, 100*units.MB)
	if !g.Allow(0, 100*units.MB, at(0)) {
		t.Fatal("boot burst denied")
	}
	// 250 ms at 100 MB/s = 25 MB.
	if g.Allow(0, 26*units.MB, at(0.25)) {
		t.Fatal("sub-second refill over-credited")
	}
	if !g.Allow(0, 25*units.MB, at(0.25)) {
		t.Fatal("sub-second refill under-credited")
	}
}

func TestGovernorHugeGapNoOverflow(t *testing.T) {
	g := NewGovernor(1, units.GB, 4*units.GB)
	g.Allow(0, 4*units.GB, at(0))
	// A gap of ~292 years of virtual time must clamp at burst, not overflow.
	far := units.Time(math.MaxInt64 - 1)
	if got := g.Available(0, far); got != 4*units.GB {
		t.Fatalf("available after huge gap = %v, want burst", got)
	}
}

func TestGovernorRefund(t *testing.T) {
	g := NewGovernor(1, units.MB, 10*units.MB)
	if !g.Allow(0, 6*units.MB, at(0)) {
		t.Fatal("grant denied")
	}
	g.Refund(0, 6*units.MB)
	if g.Granted() != 0 {
		t.Fatalf("granted after refund = %v, want 0", g.Granted())
	}
	if !g.Allow(0, 10*units.MB, at(0)) {
		t.Fatal("refund did not restore tokens")
	}
}

// The no-starvation property: over any prefix of any request sequence with
// monotone timestamps, total granted bytes per node never exceed
// burst + rate * elapsed — demand I/O always keeps at least the residual
// bandwidth. This is the acceptance property from §5.8.
func TestGovernorNoStarvationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rate := units.Bytes(1+rng.Intn(256)) * units.MB
		burst := rate * units.Bytes(1+rng.Intn(8))
		g := NewGovernor(1, rate, burst)
		now := units.Time(0)
		granted := units.Bytes(0)
		for i := 0; i < 200; i++ {
			now += units.Time(rng.Int63n(int64(units.Second) / 2))
			size := units.Bytes(1+rng.Intn(int(2*burst/units.MB))) * units.MB / 2
			if g.Allow(0, size, now) {
				granted += size
			}
			elapsed := float64(now) / float64(units.Second)
			cap := float64(burst) + float64(rate)*elapsed
			if float64(granted) > cap+1 {
				t.Logf("seed %d: granted %d > burst+rate*t %.0f at t=%v", seed, granted, cap, now)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
