// Package prefetch is the predictive chunk-warming layer (§5.8), shared by
// the discrete-event simulator and the live service the same way
// internal/qos is: one controller object implements core.PrefetchPlanner
// and is wired into the scheduler via core.PrefetchSetter.
//
// Three parts cooperate:
//
//   - A predictor (predictor.go) watches the per-action chunk-footprint
//     stream from completed tasks: an order-1/order-2 Markov transition
//     table over ChunkID deltas captures trajectories (camera paths,
//     time-series sweeps), and an exponentially-decayed frequency prior
//     re-ranks historically hot chunks that churn evicted. It emits ranked
//     candidate chunks.
//
//   - The controller (controller.go) turns candidates into per-node
//     directives inside the scheduler's idle windows: it runs after every
//     demand pass of Schedule (strictly lower rank), reuses the Estimate[c]
//     table for the ε-style idle guard, and keeps at most one warm in
//     flight per node so a demand task can always absorb it ("hidden hit").
//
//   - A bandwidth governor (governor.go) meters warming bytes per node
//     with a token bucket, so background warming can never starve demand
//     I/O no matter how confident the predictor gets.
//
// Prefetched chunks enter caches through InsertCold: at the cold end of
// the recency order, never evicting a chunk pinned by a scheduled task.
// The layer is off by default; with it off, no code path below is reached
// and golden outputs are bit-identical.
package prefetch

import (
	"vizsched/internal/units"
)

// Config parameterizes the prefetching layer. The zero value of any field
// selects its default, so callers can set only what they study.
type Config struct {
	// Order is the Markov model depth over chunk deltas: 1 conditions the
	// next delta on the last one, 2 on the last two (falling back to
	// order 1 until a stream has enough history). Default 2.
	Order int
	// TopK bounds how many ranked candidates the controller considers per
	// scheduling cycle. Default 32.
	TopK int
	// RateBytesPerSec is each node's sustained warming budget — the token
	// bucket's refill rate. Default 128 MB/s.
	RateBytesPerSec units.Bytes
	// Burst is the token bucket depth: the largest warming burst a node may
	// issue after sitting idle. Must cover the largest chunk or that chunk
	// can never be prefetched. Default 1 GB.
	Burst units.Bytes
	// HalfLife is the frequency prior's exponential decay half-life: how
	// long ago an access may be and still count half. Default 10 s.
	HalfLife units.Duration
	// StreamTTL stops a per-action stream from generating Markov candidates
	// this long after its last observation (the action likely ended).
	// Default 2 s.
	StreamTTL units.Duration
	// MarkovWeight and PriorWeight blend the two signal sources into one
	// candidate score. Defaults 1.0 and 0.5; negative disables that source
	// entirely (zero means "use the default").
	MarkovWeight float64
	PriorWeight  float64
	// MinScore drops candidates scoring below this floor — noise from
	// near-uniform transition rows. Default 0.02.
	MinScore float64
}

// DefaultConfig returns the defaults documented on Config.
func DefaultConfig() *Config {
	c := Config{}
	c = c.withDefaults()
	return &c
}

// withDefaults returns a copy with zero fields resolved.
func (c Config) withDefaults() Config {
	if c.Order <= 0 {
		c.Order = 2
	}
	if c.Order > 2 {
		c.Order = 2
	}
	if c.TopK <= 0 {
		c.TopK = 32
	}
	if c.RateBytesPerSec <= 0 {
		c.RateBytesPerSec = 128 * units.MB
	}
	if c.Burst <= 0 {
		c.Burst = units.GB
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 10 * units.Second
	}
	if c.StreamTTL <= 0 {
		c.StreamTTL = 2 * units.Second
	}
	if c.MarkovWeight == 0 {
		c.MarkovWeight = 1.0
	} else if c.MarkovWeight < 0 {
		c.MarkovWeight = 0
	}
	if c.PriorWeight == 0 {
		c.PriorWeight = 0.5
	} else if c.PriorWeight < 0 {
		c.PriorWeight = 0
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.02
	}
	return c
}
