package prefetch

import (
	"vizsched/internal/core"
	"vizsched/internal/units"
)

// Governor meters prefetch bytes per node with a token bucket: tokens are
// bytes, refilled at RateBytesPerSec up to Burst. Demand I/O never passes
// through the governor — only warming does — so however aggressive the
// predictor gets, background transfer per node is bounded by
// burst + rate·Δt bytes over any window Δt, which is the no-starvation
// property the tests assert.
//
// All arithmetic is integer and overflow-safe; refill is lazy (computed at
// Allow time), so an idle governor costs nothing.
type Governor struct {
	rate  units.Bytes // per second
	burst units.Bytes

	tokens []units.Bytes
	last   []units.Time

	granted units.Bytes
	grants  int64
	denials int64
}

// NewGovernor builds a governor for n nodes with full buckets, so a cold
// boot can begin warming immediately.
func NewGovernor(n int, rate, burst units.Bytes) *Governor {
	if n <= 0 {
		panic("prefetch: governor needs at least one node")
	}
	if rate <= 0 || burst <= 0 {
		panic("prefetch: governor rate and burst must be positive")
	}
	g := &Governor{
		rate:   rate,
		burst:  burst,
		tokens: make([]units.Bytes, n),
		last:   make([]units.Time, n),
	}
	for k := range g.tokens {
		g.tokens[k] = burst
	}
	return g
}

// refill advances node k's bucket to now.
func (g *Governor) refill(k int, now units.Time) {
	elapsed := now.Sub(g.last[k])
	if elapsed <= 0 {
		return
	}
	g.last[k] = now
	// Overflow-safe split: a gap long enough to fill the bucket from empty
	// short-circuits, so secs*rate below is bounded by burst + rate.
	secs := int64(elapsed / units.Duration(units.Second))
	if secs >= int64(g.burst/g.rate)+1 {
		g.tokens[k] = g.burst
		return
	}
	rem := units.Bytes(elapsed % units.Duration(units.Second))
	add := units.Bytes(secs)*g.rate + g.rate*rem/units.Bytes(units.Second)
	g.tokens[k] += add
	if g.tokens[k] > g.burst {
		g.tokens[k] = g.burst
	}
}

// Allow asks to move size warming bytes to node k at the given time,
// deducting on success. Oversize requests (> burst) are always denied.
func (g *Governor) Allow(k core.NodeID, size units.Bytes, now units.Time) bool {
	g.refill(int(k), now)
	if size > g.tokens[int(k)] {
		g.denials++
		return false
	}
	g.tokens[int(k)] -= size
	g.granted += size
	g.grants++
	return true
}

// Available returns node k's current token balance.
func (g *Governor) Available(k core.NodeID, now units.Time) units.Bytes {
	g.refill(int(k), now)
	return g.tokens[int(k)]
}

// Granted returns the total bytes granted across all nodes.
func (g *Governor) Granted() units.Bytes { return g.granted }

// Refund returns tokens for a warm that was cancelled before any bytes
// moved (e.g. the target node failed between planning and issue).
func (g *Governor) Refund(k core.NodeID, size units.Bytes) {
	g.tokens[int(k)] += size
	if g.tokens[int(k)] > g.burst {
		g.tokens[int(k)] = g.burst
	}
	g.granted -= size
	g.grants--
}
