package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vizsched/internal/units"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []units.Time
	times := []units.Duration{5, 1, 3, 2, 4}
	for _, d := range times {
		s.After(d*units.Millisecond, func(sim *Simulator) {
			got = append(got, sim.Now())
		})
	}
	end := s.Run(0)
	if len(got) != len(times) {
		t.Fatalf("fired %d events, want %d", len(got), len(times))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if end != units.Time(5*units.Millisecond) {
		t.Errorf("end time = %v, want 5ms", end)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(units.Time(units.Second), func(*Simulator) { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(units.Time(units.Second), func(sim *Simulator) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		sim.At(0, func(*Simulator) {})
	})
	s.Run(0)
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	New().At(0, nil)
}

func TestHorizonStopsLoop(t *testing.T) {
	s := New()
	fired := 0
	for i := 1; i <= 10; i++ {
		s.At(units.Time(i)*units.Time(units.Second), func(*Simulator) { fired++ })
	}
	end := s.Run(units.Time(4 * units.Second))
	if fired != 4 {
		t.Errorf("fired = %d, want 4", fired)
	}
	if end != units.Time(4*units.Second) {
		t.Errorf("end = %v, want 4s", end)
	}
	// Continuing the run picks up where the horizon left off.
	end = s.Run(0)
	if fired != 10 {
		t.Errorf("after full run fired = %d, want 10", fired)
	}
	if end != units.Time(10*units.Second) {
		t.Errorf("end = %v, want 10s", end)
	}
}

func TestTimerCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(units.Second, func(*Simulator) { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel returned false")
	}
	if tm.Cancel() {
		t.Error("second Cancel returned true")
	}
	s.Run(0)
	if fired {
		t.Error("canceled event fired")
	}
}

func TestEveryTicksAndCancel(t *testing.T) {
	s := New()
	var ticks []units.Time
	var tm Timer
	tm = s.Every(10*units.Millisecond, func(sim *Simulator) {
		ticks = append(ticks, sim.Now())
		if len(ticks) == 5 {
			tm.Cancel()
		}
	})
	s.Run(units.Time(units.Second))
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, tk := range ticks {
		want := units.Time(units.Duration(i+1) * 10 * units.Millisecond)
		if tk != want {
			t.Errorf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	New().Every(0, func(*Simulator) {})
}

func TestStopDiscardsQueue(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func(sim *Simulator) { fired++; sim.Stop() })
	s.At(2, func(*Simulator) { fired++ })
	s.Run(0)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after Stop, want 0", s.Pending())
	}
}

func TestCascadingEvents(t *testing.T) {
	s := New()
	depth := 0
	var recurse Event
	recurse = func(sim *Simulator) {
		depth++
		if depth < 100 {
			sim.After(units.Microsecond, recurse)
		}
	}
	s.After(0, recurse)
	s.Run(0)
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if s.Fired() != 100 {
		t.Errorf("fired = %d, want 100", s.Fired())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock ends at the maximum delay.
func TestQuickOrderProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		s := New()
		var fireTimes []units.Time
		max := units.Time(0)
		for _, d := range delays {
			at := units.Time(d)
			if at > max {
				max = at
			}
			s.At(at, func(sim *Simulator) { fireTimes = append(fireTimes, sim.Now()) })
		}
		s.Run(0)
		if !sort.SliceIsSorted(fireTimes, func(i, j int) bool { return fireTimes[i] < fireTimes[j] }) {
			return false
		}
		if len(delays) > 0 && s.Now() != max {
			return false
		}
		return len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving schedule/cancel operations never loses a live event
// and never fires a dead one.
func TestQuickCancelProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		live := 0
		fired := 0
		for i := 0; i < int(n); i++ {
			tm := s.At(units.Time(rng.Intn(1000)), func(*Simulator) { fired++ })
			if rng.Intn(2) == 0 {
				tm.Cancel()
			} else {
				live++
			}
		}
		s.Run(0)
		return fired == live
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// A canceled timer must not occupy heap memory until its firing time: once
// canceled events outnumber live ones the queue compacts, so Pending()
// shrinks long before the clock reaches the canceled instants.
func TestMassCancellationReapsQueue(t *testing.T) {
	s := New()
	const n = 1024
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		// Far-future events: without reaping these would linger for hours of
		// virtual time.
		timers = append(timers, s.At(units.Time(units.Duration(i+1)*units.Minute), func(*Simulator) {}))
	}
	if s.Pending() != n {
		t.Fatalf("pending = %d, want %d", s.Pending(), n)
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	if s.Pending() >= n/2 {
		t.Errorf("pending = %d after canceling all %d events; reaping did not shrink the queue", s.Pending(), n)
	}
	s.Run(0)
	if got := s.Fired(); got != 0 {
		t.Errorf("fired %d canceled events", got)
	}
}

// Reaping must not disturb live events: cancel every other timer in bulk and
// verify the survivors still fire, in order, exactly once.
func TestReapPreservesLiveEvents(t *testing.T) {
	s := New()
	const n = 500
	var fired []int
	timers := make([]Timer, n)
	for i := 0; i < n; i++ {
		i := i
		timers[i] = s.At(units.Time(units.Duration(i+1)*units.Second), func(*Simulator) { fired = append(fired, i) })
	}
	for i := 0; i < n; i += 2 {
		timers[i].Cancel()
	}
	s.Run(0)
	if len(fired) != n/2 {
		t.Fatalf("fired %d events, want %d", len(fired), n/2)
	}
	for j, i := range fired {
		if i != 2*j+1 {
			t.Fatalf("fired[%d] = %d, want %d", j, i, 2*j+1)
		}
	}
}

// A Timer handle must go stale once its event fires, even if the slab slot
// is recycled for a new event: canceling the old handle is a no-op and the
// new occupant still fires.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	s := New()
	firstFired, secondFired := false, false
	old := s.At(units.Time(units.Second), func(*Simulator) { firstFired = true })
	s.Run(0)
	if !firstFired {
		t.Fatal("first event did not fire")
	}
	// The freed slot is recycled for the next event.
	s.At(units.Time(2*units.Second), func(*Simulator) { secondFired = true })
	if old.Cancel() {
		t.Error("stale handle reported a pending cancel")
	}
	s.Run(0)
	if !secondFired {
		t.Error("stale handle canceled the slot's new occupant")
	}
}

// An Every timer recycles one slab slot forever, and canceling it before a
// pending tick removes that tick from the queue.
func TestEveryCancelBeforeFirstTick(t *testing.T) {
	s := New()
	tm := s.Every(units.Second, func(*Simulator) { t.Error("canceled ticker fired") })
	if !tm.Cancel() {
		t.Error("Cancel on pending ticker returned false")
	}
	s.Run(0)
	if s.Fired() != 0 {
		t.Errorf("fired = %d, want 0", s.Fired())
	}
}

// Steady-state event dispatch must not allocate: once the slab has grown to
// the working set, schedule/fire cycles recycle slots.
func TestSteadyStateDispatchDoesNotAllocate(t *testing.T) {
	s := New()
	var step Event
	n := 0
	step = func(sim *Simulator) {
		n++
		if n < 10_000 {
			sim.After(units.Microsecond, step)
		}
	}
	// Warm up: grow the slab and heap to their steady-state size.
	s.After(units.Microsecond, step)
	s.Run(0)
	avg := testing.AllocsPerRun(100, func() {
		n = 0
		s.After(units.Microsecond, step)
		s.Run(0)
	})
	// 10k events per run; anything beyond stray noise means per-event
	// allocation crept back in.
	if avg > 3 {
		t.Errorf("steady-state run allocated %.1f objects per 10k events", avg)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(units.Time(j%97), func(*Simulator) {})
		}
		s.Run(0)
	}
}

func TestDuringChaosWindow(t *testing.T) {
	s := New()
	var order []string
	s.During(units.Time(units.Second), units.Time(3*units.Second),
		func(sim *Simulator) { order = append(order, "begin") },
		func(sim *Simulator) { order = append(order, "end") })
	s.At(units.Time(2*units.Second), func(*Simulator) { order = append(order, "mid") })
	s.Run(0)
	if len(order) != 3 || order[0] != "begin" || order[1] != "mid" || order[2] != "end" {
		t.Errorf("interval events fired as %v, want [begin mid end]", order)
	}
}

func TestDuringInvertedIntervalPanicsLikeFailedPrecondition(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted During interval did not panic")
		}
	}()
	s := New()
	s.During(units.Time(2*units.Second), units.Time(units.Second),
		func(*Simulator) {}, func(*Simulator) {})
}
