// Package des is a small deterministic discrete-event simulation kernel.
//
// The simulator owns a virtual clock (units.Time) and a priority queue of
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking by sequence number), which makes every run of
// a seeded scenario bit-for-bit reproducible — a requirement for regenerating
// the paper's figures.
//
// The queue is a hand-rolled 4-ary heap over a slab of items recycled
// through a free list, so steady-state event dispatch performs zero heap
// allocations: scheduling reuses a slab slot, firing returns it. Canceled
// events are skipped lazily when popped, but once they outnumber the live
// events the heap is compacted in one pass, so a burst of cancellations
// cannot pin memory until its firing times are reached.
package des

import (
	"fmt"

	"vizsched/internal/units"
)

// Event is a callback that fires at a virtual instant. The simulator passes
// itself so handlers can schedule follow-up events.
type Event func(sim *Simulator)

// item is a scheduled event in the kernel's slab.
type item struct {
	at  units.Time
	seq uint64
	fn  Event
	// period is positive for Every timers, which re-arm in place: the same
	// slab slot is pushed back with a fresh (time, seq), so a periodic timer
	// never allocates after creation and its handle stays valid for its
	// whole life.
	period units.Duration
	// gen distinguishes successive occupants of the slot; a Timer whose gen
	// no longer matches is stale and cancels nothing.
	gen uint32
	// canceled events stay in the heap until popped or reaped; this keeps
	// the common case (timers that do fire) free of removal costs.
	canceled bool
	// queued reports whether the item is currently in the heap (false while
	// its callback is executing).
	queued bool
}

// Timer is a cancelable handle to a scheduled event. Timers are small
// values; the zero Timer is inert and Cancel on it is a no-op.
type Timer struct {
	s    *Simulator
	slot int32
	gen  uint32
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op. Cancel reports whether the event was
// still pending in the queue.
func (t Timer) Cancel() bool {
	if t.s == nil || int(t.slot) >= len(t.s.items) {
		return false
	}
	it := &t.s.items[t.slot]
	if it.gen != t.gen || it.canceled {
		return false
	}
	it.canceled = true
	it.fn = nil // release the callback's captures immediately
	if !it.queued {
		// The event is firing right now (e.g. a periodic tick canceling
		// itself); the run loop will see the flag and not re-arm it.
		return false
	}
	t.s.nCanceled++
	t.s.maybeReap()
	return true
}

// arity is the heap branching factor. A 4-ary heap halves the tree depth of
// a binary heap and keeps each node's children in one cache line of the
// int32 index slice.
const arity = 4

// Simulator is the event loop. The zero value is not usable; call New.
type Simulator struct {
	now units.Time
	seq uint64

	// items is the slab of all event slots; free lists recycled slots; heap
	// holds the indices of queued items ordered by (time, sequence).
	items []item
	free  []int32
	heap  []int32
	// nCanceled counts canceled items still occupying heap slots.
	nCanceled int

	stopped bool
	// fired counts events executed, exposed for tests and runaway detection.
	fired uint64
}

// New returns a simulator with its clock at the epoch.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() units.Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including canceled
// events that have not yet been reaped).
func (s *Simulator) Pending() int { return len(s.heap) }

// alloc takes a slab slot for a new event and queues it.
func (s *Simulator) alloc(at units.Time, fn Event, period units.Duration) int32 {
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.items = append(s.items, item{gen: 1})
		idx = int32(len(s.items) - 1)
	}
	it := &s.items[idx]
	it.at = at
	it.seq = s.seq
	s.seq++
	it.fn = fn
	it.period = period
	it.canceled = false
	s.push(idx)
	return idx
}

// release returns a slot to the free list, invalidating outstanding handles.
func (s *Simulator) release(idx int32) {
	it := &s.items[idx]
	it.gen++
	it.fn = nil
	it.period = 0
	it.canceled = false
	it.queued = false
	s.free = append(s.free, idx)
}

// less orders queued items by (time, sequence).
func (s *Simulator) less(a, b int32) bool {
	ia, ib := &s.items[a], &s.items[b]
	if ia.at != ib.at {
		return ia.at < ib.at
	}
	return ia.seq < ib.seq
}

func (s *Simulator) push(idx int32) {
	s.items[idx].queued = true
	s.heap = append(s.heap, idx)
	// Sift up.
	h := s.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / arity
		if !s.less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// siftDown restores heap order below position i.
func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	for {
		first := arity*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(h[c], h[best]) {
				best = c
			}
		}
		if !s.less(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// popRoot removes the earliest queued item and returns its slab index.
func (s *Simulator) popRoot() int32 {
	h := s.heap
	idx := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	if n > 0 {
		s.siftDown(0)
	}
	s.items[idx].queued = false
	return idx
}

// maybeReap compacts the heap once canceled items outnumber live ones,
// freeing their slots in one O(n) pass instead of waiting for each firing
// time. Small heaps are left alone: the waste is bounded and the pass is
// not.
func (s *Simulator) maybeReap() {
	if len(s.heap) < 64 || s.nCanceled <= len(s.heap)/2 {
		return
	}
	live := s.heap[:0]
	for _, idx := range s.heap {
		if s.items[idx].canceled {
			s.release(idx)
		} else {
			live = append(live, idx)
		}
	}
	s.heap = live
	for i := (len(live) - 2) / arity; i >= 0; i-- {
		s.siftDown(i)
	}
	s.nCanceled = 0
}

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past panics: it always indicates a logic error in the model, and silently
// clamping would corrupt causality.
func (s *Simulator) At(at units.Time, fn Event) Timer {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: nil event")
	}
	idx := s.alloc(at, fn, 0)
	return Timer{s: s, slot: idx, gen: s.items[idx].gen}
}

// After schedules fn to run d after the current virtual time. Negative
// delays panic via At.
func (s *Simulator) After(d units.Duration, fn Event) Timer {
	return s.At(s.now.Add(d), fn)
}

// During schedules begin at from and end at to, returning both timers —
// the shape interval effects (degraded I/O, transient stalls) take. The
// interval must not be inverted; an empty interval (to == from) fires begin
// then end at the same instant in that order.
func (s *Simulator) During(from, to units.Time, begin, end Event) (Timer, Timer) {
	if to < from {
		panic(fmt.Sprintf("des: During interval ends %v before it begins %v", to, from))
	}
	return s.At(from, begin), s.At(to, end)
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned Timer is canceled or the simulation stops. fn observes the tick
// time via sim.Now().
func (s *Simulator) Every(d units.Duration, fn Event) Timer {
	if d <= 0 {
		panic("des: Every requires a positive period")
	}
	if fn == nil {
		panic("des: nil event")
	}
	idx := s.alloc(s.now.Add(d), fn, d)
	return Timer{s: s, slot: idx, gen: s.items[idx].gen}
}

// Stop halts the event loop after the current event returns. Remaining
// events are discarded by Run.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in order until the queue drains, the horizon passes,
// or Stop is called. A zero horizon means "run to completion". Run returns
// the virtual time at which it stopped.
func (s *Simulator) Run(horizon units.Time) units.Time {
	for len(s.heap) > 0 && !s.stopped {
		idx := s.heap[0]
		if horizon > 0 && s.items[idx].at > horizon {
			s.now = horizon
			break
		}
		s.popRoot()
		it := &s.items[idx]
		if it.canceled {
			s.nCanceled--
			s.release(idx)
			continue
		}
		if it.at < s.now {
			panic("des: event heap yielded time travel")
		}
		s.now = it.at
		s.fired++
		fn := it.fn
		fn(s)
		// fn may have grown the slab; re-take the pointer before touching it.
		it = &s.items[idx]
		if it.period > 0 && !it.canceled && !s.stopped {
			// Re-arm the periodic timer in place. The fresh sequence number
			// is taken after fn ran, so follow-up events fn scheduled at the
			// same instant keep firing before the next tick — the same order
			// the old closure-based rescheduling produced.
			it.at = s.now.Add(it.period)
			it.seq = s.seq
			s.seq++
			s.push(idx)
		} else {
			s.release(idx)
		}
	}
	if s.stopped {
		// Drop whatever is left so a subsequent Run does not resurrect it.
		s.heap = s.heap[:0]
		s.items = nil
		s.free = nil
		s.nCanceled = 0
	}
	return s.now
}
