// Package des is a small deterministic discrete-event simulation kernel.
//
// The simulator owns a virtual clock (units.Time) and a priority queue of
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking by sequence number), which makes every run of
// a seeded scenario bit-for-bit reproducible — a requirement for regenerating
// the paper's figures.
package des

import (
	"container/heap"
	"fmt"

	"vizsched/internal/units"
)

// Event is a callback that fires at a virtual instant. The simulator passes
// itself so handlers can schedule follow-up events.
type Event func(sim *Simulator)

// item is a scheduled event in the kernel's heap.
type item struct {
	at  units.Time
	seq uint64
	fn  Event
	// canceled events stay in the heap but are skipped when popped; this is
	// cheaper than O(n) removal and the common case (timers that do fire)
	// pays nothing.
	canceled bool
	index    int
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct{ it *item }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op. Cancel reports whether the event was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.it == nil || t.it.canceled {
		return false
	}
	pending := t.it.index >= 0
	t.it.canceled = true
	return pending
}

// eventHeap orders items by (time, sequence).
type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Simulator is the event loop. The zero value is not usable; call New.
type Simulator struct {
	now     units.Time
	seq     uint64
	queue   eventHeap
	stopped bool
	// fired counts events executed, exposed for tests and runaway detection.
	fired uint64
}

// New returns a simulator with its clock at the epoch.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() units.Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including canceled
// events that have not yet been reaped).
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at the absolute virtual time at. Scheduling in the
// past panics: it always indicates a logic error in the model, and silently
// clamping would corrupt causality.
func (s *Simulator) At(at units.Time, fn Event) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: nil event")
	}
	it := &item{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, it)
	return &Timer{it: it}
}

// After schedules fn to run d after the current virtual time. Negative
// delays panic via At.
func (s *Simulator) After(d units.Duration, fn Event) *Timer {
	return s.At(s.now.Add(d), fn)
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned Timer is canceled or the simulation stops. fn observes the tick
// time via sim.Now().
func (s *Simulator) Every(d units.Duration, fn Event) *Timer {
	if d <= 0 {
		panic("des: Every requires a positive period")
	}
	t := &Timer{}
	var tick Event
	tick = func(sim *Simulator) {
		fn(sim)
		if !t.it.canceled {
			t.it = sim.After(d, tick).it
		}
	}
	t.it = s.After(d, tick).it
	return t
}

// Stop halts the event loop after the current event returns. Remaining
// events are discarded by Run.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in order until the queue drains, the horizon passes,
// or Stop is called. A zero horizon means "run to completion". Run returns
// the virtual time at which it stopped.
func (s *Simulator) Run(horizon units.Time) units.Time {
	for len(s.queue) > 0 && !s.stopped {
		it := s.queue[0]
		if horizon > 0 && it.at > horizon {
			s.now = horizon
			break
		}
		heap.Pop(&s.queue)
		if it.canceled {
			continue
		}
		if it.at < s.now {
			panic("des: event heap yielded time travel")
		}
		s.now = it.at
		s.fired++
		it.fn(s)
	}
	if s.stopped {
		// Drop whatever is left so a subsequent Run does not resurrect it.
		s.queue = nil
	}
	return s.now
}
