// Package img provides the premultiplied-alpha float image used throughout
// the rendering pipeline, the front-to-back "over" operator that both the
// ray caster and the sort-last compositors rely on, and encoders to standard
// image formats.
//
// All colors are premultiplied by alpha. Premultiplication is what makes
// "over" associative — the property the binary-swap and 2-3-swap compositors
// (and their tests) depend on.
package img

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
)

// RGBA is one premultiplied color sample.
type RGBA struct {
	R, G, B, A float32
}

// Over composites src over dst (both premultiplied) and returns the result.
// This is the standard Porter-Duff over operator.
func (dst RGBA) Under(src RGBA) RGBA { return src.Over(dst) }

// Over returns c composited over bg.
func (c RGBA) Over(bg RGBA) RGBA {
	t := 1 - c.A
	return RGBA{
		R: c.R + bg.R*t,
		G: c.G + bg.G*t,
		B: c.B + bg.B*t,
		A: c.A + bg.A*t,
	}
}

// AccumulateFrontToBack adds a new sample behind the accumulated color, the
// form used inside a ray marcher: acc += (1-acc.A)*sample.
func (c *RGBA) AccumulateFrontToBack(sample RGBA) {
	t := 1 - c.A
	c.R += sample.R * t
	c.G += sample.G * t
	c.B += sample.B * t
	c.A += sample.A * t
}

// Opaque reports whether the sample is (nearly) fully opaque, the early-ray-
// termination test.
func (c RGBA) Opaque() bool { return c.A >= 0.995 }

// Image is a W×H premultiplied float RGBA image.
type Image struct {
	W, H int
	Pix  []RGBA
}

// New allocates a transparent-black image.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]RGBA, w*h)}
}

// At returns the pixel at (x,y); coordinates must be in range.
func (m *Image) At(x, y int) RGBA { return m.Pix[y*m.W+x] }

// Set stores p at (x,y).
func (m *Image) Set(x, y int, p RGBA) { m.Pix[y*m.W+x] = p }

// Clone returns a deep copy.
func (m *Image) Clone() *Image {
	c := New(m.W, m.H)
	copy(c.Pix, m.Pix)
	return c
}

// CompositeOver composites front over m in place, pixelwise. The images must
// be the same size.
func (m *Image) CompositeOver(front *Image) {
	if front.W != m.W || front.H != m.H {
		panic(fmt.Sprintf("img: size mismatch %dx%d over %dx%d", front.W, front.H, m.W, m.H))
	}
	for i := range m.Pix {
		m.Pix[i] = front.Pix[i].Over(m.Pix[i])
	}
}

// MaxDiff returns the largest absolute channel difference between two
// equal-sized images, used by tests to compare compositing strategies.
func MaxDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("img: MaxDiff size mismatch")
	}
	var worst float64
	for i := range a.Pix {
		p, q := a.Pix[i], b.Pix[i]
		for _, d := range []float32{p.R - q.R, p.G - q.G, p.B - q.B, p.A - q.A} {
			if f := math.Abs(float64(d)); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// ToNRGBA converts to a standard library image, un-premultiplying and
// compositing onto an opaque black background.
func (m *Image) ToNRGBA() *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			p := m.At(x, y).Over(RGBA{0, 0, 0, 1})
			out.SetNRGBA(x, y, color.NRGBA{
				R: to8(p.R),
				G: to8(p.G),
				B: to8(p.B),
				A: 255,
			})
		}
	}
	return out
}

func to8(v float32) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

// EncodePNG writes the image as PNG.
func (m *Image) EncodePNG(w io.Writer) error {
	return png.Encode(w, m.ToNRGBA())
}

// SavePNG writes the image to the named PNG file.
func (m *Image) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.EncodePNG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EncodePPM writes the image as a binary P6 PPM — useful where a viewer
// without PNG support inspects output, and as a second, trivially parseable
// format for tests.
func (m *Image) EncodePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	row := make([]byte, m.W*3)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			p := m.At(x, y).Over(RGBA{0, 0, 0, 1})
			row[x*3+0] = to8(p.R)
			row[x*3+1] = to8(p.G)
			row[x*3+2] = to8(p.B)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// Luminance returns the mean luminance of the image composited on black,
// a cheap scalar summary tests use to assert "something visible rendered".
func (m *Image) Luminance() float64 {
	var sum float64
	for _, p := range m.Pix {
		c := p.Over(RGBA{0, 0, 0, 1})
		sum += 0.2126*float64(c.R) + 0.7152*float64(c.G) + 0.0722*float64(c.B)
	}
	return sum / float64(len(m.Pix))
}

// PSNR returns the peak signal-to-noise ratio between two equal-sized
// images in decibels, computed over RGB composited on black — the standard
// fidelity figure for comparing compositing strategies and codecs.
// Identical images return +Inf.
func PSNR(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("img: PSNR size mismatch")
	}
	var mse float64
	for i := range a.Pix {
		p := a.Pix[i].Over(RGBA{0, 0, 0, 1})
		q := b.Pix[i].Over(RGBA{0, 0, 0, 1})
		for _, d := range []float32{p.R - q.R, p.G - q.G, p.B - q.B} {
			mse += float64(d) * float64(d)
		}
	}
	mse /= float64(len(a.Pix) * 3)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(1/mse)
}

// Diff returns a heatmap image of per-pixel differences (red intensity ∝
// max channel error), for debugging compositing or codec regressions.
func Diff(a, b *Image) *Image {
	if a.W != b.W || a.H != b.H {
		panic("img: Diff size mismatch")
	}
	out := New(a.W, a.H)
	for i := range a.Pix {
		p, q := a.Pix[i], b.Pix[i]
		var worst float32
		for _, d := range []float32{p.R - q.R, p.G - q.G, p.B - q.B, p.A - q.A} {
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		out.Pix[i] = RGBA{R: worst, A: worst}
	}
	return out
}
