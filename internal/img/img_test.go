package img

import (
	"bytes"
	"image/png"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func almost(a, b float32) bool { return math.Abs(float64(a-b)) < 1e-5 }

func TestOverIdentities(t *testing.T) {
	c := RGBA{0.2, 0.3, 0.4, 0.5}
	clear := RGBA{}
	opaque := RGBA{0.9, 0.1, 0.2, 1}
	// Transparent over X = X.
	got := clear.Over(c)
	if !almost(got.R, c.R) || !almost(got.A, c.A) {
		t.Errorf("clear over c = %+v", got)
	}
	// Opaque over X = opaque.
	got = opaque.Over(c)
	if got != opaque {
		t.Errorf("opaque over c = %+v", got)
	}
}

func randColor(rng *rand.Rand) RGBA {
	a := rng.Float32()
	// Premultiplied: channels never exceed alpha.
	return RGBA{rng.Float32() * a, rng.Float32() * a, rng.Float32() * a, a}
}

// Property: over is associative for premultiplied colors.
func TestQuickOverAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randColor(rng), randColor(rng), randColor(rng)
		ab := a.Over(b)
		bc := b.Over(c)
		l := ab.Over(c)
		r := a.Over(bc)
		return almost(l.R, r.R) && almost(l.G, r.G) && almost(l.B, r.B) && almost(l.A, r.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: front-to-back accumulation equals a chain of Over operations.
func TestQuickAccumulateMatchesOver(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := make([]RGBA, int(n%8)+1)
		for i := range samples {
			samples[i] = randColor(rng)
		}
		var acc RGBA
		for _, s := range samples {
			acc.AccumulateFrontToBack(s)
		}
		// Back-to-front: composite from the last sample backwards.
		over := samples[len(samples)-1]
		for i := len(samples) - 2; i >= 0; i-- {
			over = samples[i].Over(over)
		}
		return almost(acc.R, over.R) && almost(acc.G, over.G) && almost(acc.B, over.B) && almost(acc.A, over.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOpaque(t *testing.T) {
	if (RGBA{A: 0.9}).Opaque() {
		t.Error("0.9 alpha reported opaque")
	}
	if !(RGBA{A: 0.999}).Opaque() {
		t.Error("0.999 alpha not opaque")
	}
}

func TestImageSetAtAndClone(t *testing.T) {
	m := New(4, 3)
	p := RGBA{0.1, 0.2, 0.3, 0.4}
	m.Set(2, 1, p)
	if m.At(2, 1) != p {
		t.Error("Set/At roundtrip failed")
	}
	c := m.Clone()
	c.Set(2, 1, RGBA{})
	if m.At(2, 1) != p {
		t.Error("Clone aliases storage")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 5)
}

func TestCompositeOverWholeImage(t *testing.T) {
	back := New(2, 2)
	for i := range back.Pix {
		back.Pix[i] = RGBA{0, 0.5, 0, 0.5}
	}
	front := New(2, 2)
	front.Set(0, 0, RGBA{1, 0, 0, 1})
	back.CompositeOver(front)
	if got := back.At(0, 0); got != (RGBA{1, 0, 0, 1}) {
		t.Errorf("opaque front pixel = %+v", got)
	}
	if got := back.At(1, 1); !almost(got.G, 0.5) {
		t.Errorf("transparent front pixel = %+v", got)
	}
}

func TestCompositeOverSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 2).CompositeOver(New(3, 3))
}

func TestMaxDiff(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	if MaxDiff(a, b) != 0 {
		t.Error("identical images differ")
	}
	b.Set(1, 1, RGBA{0, 0, 0.25, 0})
	if d := MaxDiff(a, b); math.Abs(d-0.25) > 1e-9 {
		t.Errorf("MaxDiff = %v, want 0.25", d)
	}
}

func TestPNGEncode(t *testing.T) {
	m := New(8, 8)
	m.Set(3, 3, RGBA{1, 0, 0, 1})
	var buf bytes.Buffer
	if err := m.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 8 || decoded.Bounds().Dy() != 8 {
		t.Errorf("bounds = %v", decoded.Bounds())
	}
	r, _, _, _ := decoded.At(3, 3).RGBA()
	if r < 0xf000 {
		t.Errorf("red pixel = %#x", r)
	}
}

func TestSavePNG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.png")
	if err := New(4, 4).SavePNG(path); err != nil {
		t.Fatal(err)
	}
}

func TestPPMEncode(t *testing.T) {
	m := New(3, 2)
	m.Set(0, 0, RGBA{1, 1, 1, 1})
	var buf bytes.Buffer
	if err := m.EncodePPM(&buf); err != nil {
		t.Fatal(err)
	}
	want := "P6\n3 2\n255\n"
	if got := buf.String()[:len(want)]; got != want {
		t.Errorf("header = %q", got)
	}
	if buf.Len() != len(want)+3*2*3 {
		t.Errorf("payload length = %d", buf.Len())
	}
	body := buf.Bytes()[len(want):]
	if body[0] != 255 || body[1] != 255 || body[2] != 255 {
		t.Errorf("first pixel = %v", body[:3])
	}
	if body[3] != 0 {
		t.Errorf("second pixel R = %v", body[3])
	}
}

func TestLuminance(t *testing.T) {
	black := New(4, 4)
	if black.Luminance() != 0 {
		t.Error("black image has nonzero luminance")
	}
	white := New(4, 4)
	for i := range white.Pix {
		white.Pix[i] = RGBA{1, 1, 1, 1}
	}
	if l := white.Luminance(); math.Abs(l-1) > 1e-4 {
		t.Errorf("white luminance = %v", l)
	}
}

func TestPSNRAndDiff(t *testing.T) {
	a := New(8, 8)
	for i := range a.Pix {
		a.Pix[i] = RGBA{R: 0.5, G: 0.25, B: 0.75, A: 1}
	}
	if p := PSNR(a, a.Clone()); !math.IsInf(p, 1) {
		t.Errorf("identical PSNR = %v, want +Inf", p)
	}
	b := a.Clone()
	b.Set(0, 0, RGBA{R: 0.6, G: 0.25, B: 0.75, A: 1})
	p := PSNR(a, b)
	if p < 30 || math.IsInf(p, 1) {
		t.Errorf("one-pixel PSNR = %v, want high but finite", p)
	}
	// Larger error → lower PSNR.
	c := a.Clone()
	for i := range c.Pix {
		c.Pix[i].R += 0.2
	}
	if PSNR(a, c) >= p {
		t.Error("PSNR not monotone in error")
	}
	d := Diff(a, b)
	if d.At(0, 0).R == 0 {
		t.Error("Diff missed the changed pixel")
	}
	if d.At(3, 3).R != 0 {
		t.Error("Diff flagged an identical pixel")
	}
}

func TestPSNRSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PSNR(New(2, 2), New(3, 3))
}
