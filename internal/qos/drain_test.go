package qos

import (
	"math/rand"
	"testing"

	"vizsched/internal/core"
)

// TestDrainStealPreservesTenantDRROrder is the property behind the drain's
// work-stealing discipline: when a draining node's queued batch tasks are
// migrated back ahead of the remaining DRR pops (the victim's own FIFO
// order first, then the fair queue resumes), every tenant's jobs are served
// in exactly their admission order. DRR releases each tenant's earliest
// jobs first and migration never reorders the stolen prefix, so the
// concatenation can't invert any tenant's queue — across random tenant
// mixes, weights, job costs, and steal points.
func TestDrainStealPreservesTenantDRROrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		tenants := 2 + rng.Intn(5)
		weights := map[core.TenantID]int{}
		for tn := 0; tn < tenants; tn++ {
			weights[core.TenantID(tn)] = 1 + rng.Intn(3)
		}
		q := NewFairQueue(1+rng.Intn(4), weights)

		n := 5 + rng.Intn(60)
		admitted := make(map[core.TenantID][]core.JobID, tenants)
		for i := 0; i < n; i++ {
			tn := core.TenantID(rng.Intn(tenants))
			j := mkJob(i+1, tn, core.Batch, core.ActionID(i), 1+rng.Intn(4), 0)
			q.Push(j)
			admitted[tn] = append(admitted[tn], j.ID)
		}

		// DRR releases a prefix of the work onto the victim node's FIFO.
		stolen := q.PopBatch(nil, rng.Intn(n+1))
		// Drain: the victim's queue is migrated back in its own FIFO order
		// and runs ahead of everything DRR releases afterwards.
		served := append(append([]*core.Job{}, stolen...), q.PopBatch(nil, q.BatchLen())...)

		got := make(map[core.TenantID][]core.JobID, tenants)
		for _, j := range served {
			got[j.Tenant] = append(got[j.Tenant], j.ID)
		}
		for tn, want := range admitted {
			seq := got[tn]
			if len(seq) != len(want) {
				t.Fatalf("trial %d: tenant %d served %d jobs, admitted %d", trial, tn, len(seq), len(want))
			}
			for i := range want {
				if seq[i] != want[i] {
					t.Fatalf("trial %d: tenant %d order broken at %d: served %v, admitted %v",
						trial, tn, i, seq, want)
				}
			}
		}
	}
}
