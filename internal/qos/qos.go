// Package qos is the multi-tenant quality-of-service layer shared by the
// live service head and the DES simulator — the same policy-layer pattern
// as internal/core/replication.go, so published simulator figures predict
// live-head behavior. It has three parts:
//
//  1. Admission control: per-tenant token buckets, one per QoS class.
//     Interactive work carries a latency SLO; batch work is best-effort.
//     Every arriving job gets an explicit decision — Admit, Throttle
//     (admitted against borrowed future tokens), Reject, or Shed.
//  2. Weighted fair queuing: tenant queues served deficit-round-robin
//     (drr.go) replace the single FIFO, feeding the locality scheduler in
//     fair order while interactive frames are still always drained first.
//  3. SLO-driven degradation ladder (overload.go): under sustained SLO
//     breach the controller steps through halve-batch → half-resolution →
//     shed-stale-frames → reject-new-sessions, recovering in reverse.
//
// All decisions are functions of virtual time (units.Time) and the arrival
// sequence only — no wall clock, no map-iteration order — so simulator
// results are bit-reproducible across runs and worker counts.
package qos

import (
	"sort"
	"sync"

	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/units"
)

// Config parameterizes the QoS layer. The zero value of any field selects
// the default noted on it; rates <= 0 mean that class is unmetered.
type Config struct {
	// InteractiveRate / InteractiveBurst meter each tenant's interactive
	// admissions (jobs/s and bucket capacity). Rate <= 0 disables metering
	// for the class; Burst <= 0 defaults to one second of rate.
	InteractiveRate  float64
	InteractiveBurst float64
	// BatchRate / BatchBurst meter batch admissions the same way.
	BatchRate  float64
	BatchBurst float64
	// ThrottleWindow bounds throttle debt: a tenant may borrow up to this
	// much future refill before admissions turn into rejections. Default
	// 500ms.
	ThrottleWindow units.Duration

	// Quantum is the DRR quantum in task units per service visit (default
	// 8); Weights gives tenants unequal shares (default 1 each).
	Quantum int
	Weights map[core.TenantID]int

	// InteractiveSLO is the latency target driving the degradation ladder
	// (default 100ms). Window, BreachFraction, StepWindows, RecoverWindows
	// tune the ladder's sampling and hysteresis (defaults 250ms, 0.05, 2,
	// 8): escalate after StepWindows consecutive windows with more than
	// BreachFraction of interactive completions over the SLO; recover one
	// rung after RecoverWindows consecutive clean windows.
	InteractiveSLO units.Duration
	Window         units.Duration
	BreachFraction float64
	StepWindows    int
	RecoverWindows int

	// ActionDepth bounds unfinished interactive frames per (tenant, action)
	// while the shed-stale rung is active (default 3). AlwaysShedStale
	// applies stale-frame shedding at every rung — the head's legacy
	// DropStale behavior expressed through the QoS layer.
	ActionDepth     int
	AlwaysShedStale bool
}

// DefaultConfig returns a config tuned for the scenario-scale clusters the
// repo's binaries run: generous per-tenant rates that only bite under real
// contention, paper-flavored 100ms interactive SLO.
func DefaultConfig() *Config {
	return &Config{
		InteractiveRate: 200, InteractiveBurst: 60,
		BatchRate: 50, BatchBurst: 100,
	}
}

// withDefaults fills zero fields in a copy.
func (c Config) withDefaults() Config {
	if c.InteractiveRate > 0 && c.InteractiveBurst <= 0 {
		c.InteractiveBurst = c.InteractiveRate
	}
	if c.BatchRate > 0 && c.BatchBurst <= 0 {
		c.BatchBurst = c.BatchRate
	}
	if c.ThrottleWindow <= 0 {
		c.ThrottleWindow = 500 * units.Millisecond
	}
	if c.Quantum <= 0 {
		c.Quantum = 8
	}
	if c.InteractiveSLO <= 0 {
		c.InteractiveSLO = 100 * units.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 250 * units.Millisecond
	}
	if c.BreachFraction <= 0 {
		c.BreachFraction = 0.05
	}
	if c.StepWindows <= 0 {
		c.StepWindows = 2
	}
	if c.RecoverWindows <= 0 {
		c.RecoverWindows = 8
	}
	if c.ActionDepth <= 0 {
		c.ActionDepth = 3
	}
	return c
}

// Decision is the admission outcome for one job.
type Decision int

// Admission decisions. Exactly one is returned per Admit call, so per
// tenant Issued = Admitted + Throttled + Rejected + ShedStale-on-arrival.
const (
	// Admitted: the job entered the fair queue on regular tokens.
	Admitted Decision = iota
	// Throttled: the job entered the fair queue on borrowed tokens; the
	// tenant's bucket is in debt and further arrivals may be rejected.
	Throttled
	// Rejected: the job was refused (bucket exhausted past the throttle
	// window, or a new session during the reject-sessions rung).
	Rejected
	// ShedStale: the arriving interactive frame was dropped because its
	// action already has ActionDepth unfinished frames in flight.
	ShedStale
)

// Entered reports whether the decision put the job in the queue.
func (d Decision) Entered() bool { return d == Admitted || d == Throttled }

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admit"
	case Throttled:
		return "throttle"
	case Rejected:
		return "reject"
	case ShedStale:
		return "shed"
	default:
		return "decision(?)"
	}
}

// sessionKey identifies one stream of related jobs for session rejection
// and in-flight frame depth accounting.
type sessionKey struct {
	tenant core.TenantID
	action core.ActionID
}

// tenantAccount is the controller's per-tenant state: buckets + counters.
type tenantAccount struct {
	inter, batch *TokenBucket
	issued       int64
	admitted     int64
	throttled    int64
	rejected     int64
	shed         int64
	completed    int64
	failed       int64
	latency      metrics.Histogram
}

// Controller is the QoS layer's front door. The dispatcher (sim engine or
// head loop) calls Admit / Pop* / Observe; stats exporters call Outcome and
// the gauge accessors concurrently, so all state is mutex-guarded. The
// mutex is uncontended in the simulator (single goroutine) and cheap next
// to a render in the live head.
type Controller struct {
	mu       sync.Mutex
	cfg      Config
	queue    *FairQueue
	ladder   *Overload
	tenants  map[core.TenantID]*tenantAccount
	sessions map[sessionKey]struct{}
	inflight map[sessionKey]int
}

// NewController builds a controller from cfg (nil selects DefaultConfig).
func NewController(cfg *Config) *Controller {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	c := cfg.withDefaults()
	return &Controller{
		cfg:      c,
		queue:    NewFairQueue(c.Quantum, c.Weights),
		ladder:   newOverload(&c),
		tenants:  make(map[core.TenantID]*tenantAccount),
		sessions: make(map[sessionKey]struct{}),
		inflight: make(map[sessionKey]int),
	}
}

func (c *Controller) account(t core.TenantID) *tenantAccount {
	ta := c.tenants[t]
	if ta == nil {
		ta = &tenantAccount{}
		if c.cfg.InteractiveRate > 0 {
			ta.inter = NewTokenBucket(c.cfg.InteractiveRate, c.cfg.InteractiveBurst)
		}
		if c.cfg.BatchRate > 0 {
			ta.batch = NewTokenBucket(c.cfg.BatchRate, c.cfg.BatchBurst)
		}
		c.tenants[t] = ta
	}
	return ta
}

// Admit decides an arriving job's fate at virtual time now and, when the
// decision Entered(), places it in the fair queue. The returned victim is
// non-nil when admitting this frame superseded an older queued frame of
// the same action (stale-frame shed): the victim has been removed from the
// queue and accounted; the caller must fail it back to its client.
func (c *Controller) Admit(j *core.Job, now units.Time) (Decision, *core.Job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ta := c.account(j.Tenant)
	ta.issued++
	key := sessionKey{j.Tenant, j.Action}

	// Rung 4: refuse jobs from sessions we have never seen. Established
	// sessions keep flowing (degraded) — breaking mid-interaction is worse
	// than refusing a newcomer.
	if _, known := c.sessions[key]; !known {
		if c.ladder.RejectSessions() {
			ta.rejected++
			return Rejected, nil
		}
		c.sessions[key] = struct{}{}
	}

	var victim *core.Job
	if j.Class == core.Interactive && (c.cfg.AlwaysShedStale || c.ladder.ShedStale()) {
		// Rung 3: a newer frame supersedes an older queued frame of the
		// same action; with nothing queued to supersede, bound in-flight
		// depth by dropping the arrival itself.
		if victim = c.queue.StaleInteractive(j); victim != nil {
			c.queue.Remove(victim)
			va := c.account(victim.Tenant)
			va.shed++
			c.decInflight(sessionKey{victim.Tenant, victim.Action})
		} else if c.inflight[key] >= c.cfg.ActionDepth {
			ta.shed++
			return ShedStale, nil
		}
	}

	dec := Admitted
	bucket, rate := ta.inter, c.cfg.InteractiveRate
	cost := 1.0
	if j.Class == core.Batch {
		bucket, rate = ta.batch, c.cfg.BatchRate
		cost = c.ladder.BatchCostFactor() // rung 1: batch pays double
	}
	if bucket != nil {
		maxDebt := rate * c.cfg.ThrottleWindow.Seconds()
		switch {
		case bucket.Take(now, cost):
			dec = Admitted
		case bucket.TakeDebt(now, cost, maxDebt):
			dec = Throttled
		default:
			ta.rejected++
			return Rejected, victim
		}
	}
	if dec == Throttled {
		ta.throttled++
	} else {
		ta.admitted++
	}
	c.queue.Push(j)
	if j.Class == core.Interactive {
		c.inflight[key]++
	}
	return dec, victim
}

func (c *Controller) decInflight(key sessionKey) {
	if n := c.inflight[key]; n > 1 {
		c.inflight[key] = n - 1
	} else {
		delete(c.inflight, key)
	}
}

// Observe records a job completion with its end-to-end latency and drives
// the ladder. It returns whether the ladder changed level and the level now
// in force, so the caller can emit a Degrade trace event.
func (c *Controller) Observe(j *core.Job, lat units.Duration, now units.Time) (bool, Level) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ta := c.account(j.Tenant)
	ta.completed++
	ta.latency.Add(lat)
	if j.Class == core.Interactive {
		c.decInflight(sessionKey{j.Tenant, j.Action})
		return c.ladder.Observe(lat, now), c.ladder.Level()
	}
	return c.ladder.Tick(now), c.ladder.Level()
}

// Forget accounts a job that was admitted but failed before completing
// (crash out of retries, finalize error) so session depth does not leak.
func (c *Controller) Forget(j *core.Job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.account(j.Tenant).failed++
	if j.Class == core.Interactive {
		c.decInflight(sessionKey{j.Tenant, j.Action})
	}
}

// ShedQueued removes a still-queued job and accounts it as shed — the
// head's MaxQueue backstop expressed through the controller.
func (c *Controller) ShedQueued(j *core.Job) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.queue.Remove(j) {
		return false
	}
	c.account(j.Tenant).shed++
	if j.Class == core.Interactive {
		c.decInflight(sessionKey{j.Tenant, j.Action})
	}
	return true
}

// PopInteractive / PopBatch / QueueLen / OldestInteractive expose the fair
// queue to the dispatcher under the controller's lock.
func (c *Controller) PopInteractive(dst []*core.Job) []*core.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.PopInteractive(dst)
}

func (c *Controller) PopBatch(dst []*core.Job, max int) []*core.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.PopBatch(dst, max)
}

func (c *Controller) QueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.Len()
}

// BatchBacklog returns the number of batch jobs waiting in the fair queue —
// the figure a shard advertises on the donation board (§5.11): donatable
// work is exactly the queued batch backlog, since interactive frames are
// session-affine and never leave their home shard.
func (c *Controller) BatchBacklog() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.BatchLen()
}

func (c *Controller) OldestInteractive() *core.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.OldestInteractive()
}

// Level returns the ladder's current rung.
func (c *Controller) Level() Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ladder.Level()
}

// ResolutionScale returns the interactive linear resolution factor in
// force (1 when not degraded).
func (c *Controller) ResolutionScale() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ladder.ResolutionScale()
}

// SLO returns the interactive latency target the ladder (and the
// autoscaler's headroom signal) runs against.
func (c *Controller) SLO() units.Duration { return c.cfg.InteractiveSLO }

// TenantP95 is one tenant's observed end-to-end latency p95 — the raw
// material of the SLO-headroom gauges exported on /metrics and sampled by
// the autoscaler.
type TenantP95 struct {
	Tenant core.TenantID
	P95    units.Duration
}

// TenantP95s returns each known tenant's latency p95, sorted by tenant ID
// so iteration is deterministic. Tenants with no completions yet report a
// zero p95 (callers treat that as full headroom).
func (c *Controller) TenantP95s() []TenantP95 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TenantP95, 0, len(c.tenants))
	for id, ta := range c.tenants {
		out = append(out, TenantP95{Tenant: id, P95: ta.latency.P95()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// History returns the ladder transitions recorded so far.
func (c *Controller) History() []LevelChange {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]LevelChange(nil), c.ladder.history...)
}

// Outcome snapshots the run's QoS accounting as metrics types: aggregate
// decision counters, ladder activity, and the per-tenant breakdown sorted
// by tenant id.
func (c *Controller) Outcome() *metrics.QoSOutcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &metrics.QoSOutcome{
		LevelChanges: int64(len(c.ladder.history)),
		FinalLevel:   int(c.ladder.Level()),
	}
	for _, ch := range c.ladder.history {
		if int(ch.Level) > out.MaxLevel {
			out.MaxLevel = int(ch.Level)
		}
	}
	ids := make([]int, 0, len(c.tenants))
	for id := range c.tenants {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		ta := c.tenants[core.TenantID(id)]
		out.Admitted += ta.admitted
		out.Throttled += ta.throttled
		out.Rejected += ta.rejected
		out.Shed += ta.shed
		out.Tenants = append(out.Tenants, metrics.TenantQoS{
			Tenant:    id,
			Issued:    ta.issued,
			Admitted:  ta.admitted,
			Throttled: ta.throttled,
			Rejected:  ta.rejected,
			ShedTotal: ta.shed,
			Completed: ta.completed,
			Failed:    ta.failed,
			Latency:   ta.latency.Summarize(),
		})
	}
	return out
}

// Jain returns Jain's fairness index over per-tenant completed jobs.
func (c *Controller) Jain() float64 { return c.Outcome().Jain() }
