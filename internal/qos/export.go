package qos

import (
	"slices"

	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/units"
)

// This file serializes the QoS controller's durable state for the head's
// snapshot+journal recovery (DESIGN.md §5.10): token-bucket balances, the
// DRR ring in activation order with its rotor and deficits, the degradation
// ladder's position and hysteresis streaks, session registry, in-flight
// frame depths, and per-tenant accounting. The fair queue's *contents* are
// deliberately absent — queued jobs live in the head's own snapshot (they
// carry request payloads the QoS layer never sees) and re-enter the queue
// through Requeue during recovery, in original admission order, which
// reproduces the queue exactly because Push order is the only queue state.

// TenantState is one tenant's durable QoS state.
type TenantState struct {
	Tenant core.TenantID
	// Bucket balances; the Has* flags distinguish "bucket exists with this
	// state" from "class unmetered".
	HasInter                bool
	InterTokens             float64
	InterLast               units.Time
	InterPrimed             bool
	HasBatch                bool
	BatchTokens             float64
	BatchLast               units.Time
	BatchPrimed             bool
	Issued, Admitted        int64
	Throttled, Rejected     int64
	Shed, Completed, Failed int64
	Latency                 metrics.HistogramDump
}

// SessionState is one known (tenant, action) session and its in-flight
// interactive frame depth.
type SessionState struct {
	Tenant   core.TenantID
	Action   core.ActionID
	Inflight int
}

// RingSlot is one tenant's position in the DRR service ring.
type RingSlot struct {
	Tenant  core.TenantID
	Weight  int
	Deficit int
}

// StateDump is the serializable state of a Controller. All maps are
// flattened in sorted or structural (ring) order, so equal controllers
// produce deep-equal dumps.
type StateDump struct {
	Tenants  []TenantState // sorted by tenant id
	Ring     []RingSlot    // DRR ring in activation order
	Rotor    int
	Sessions []SessionState // sorted by (tenant, action)

	// Ladder state.
	Level    Level
	WinStart units.Time
	Started  bool
	N        int64
	Breaches int64
	BadRun   int
	GoodRun  int
	History  []LevelChange
}

// Export captures the controller's durable state. The fair queue must be
// drained conceptually by the caller (its jobs snapshotted elsewhere);
// Export itself does not touch queue contents.
func (c *Controller) Export() *StateDump {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := &StateDump{
		Rotor:    c.queue.rotor,
		Level:    c.ladder.level,
		WinStart: c.ladder.winStart,
		Started:  c.ladder.started,
		N:        c.ladder.n,
		Breaches: c.ladder.breaches,
		BadRun:   c.ladder.badRun,
		GoodRun:  c.ladder.goodRun,
		History:  slices.Clone(c.ladder.history),
	}
	for _, tq := range c.queue.ring {
		d.Ring = append(d.Ring, RingSlot{Tenant: tq.tenant, Weight: tq.weight, Deficit: tq.deficit})
	}
	ids := make([]core.TenantID, 0, len(c.tenants))
	for id := range c.tenants {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		ta := c.tenants[id]
		ts := TenantState{
			Tenant: id,
			Issued: ta.issued, Admitted: ta.admitted, Throttled: ta.throttled,
			Rejected: ta.rejected, Shed: ta.shed, Completed: ta.completed, Failed: ta.failed,
			Latency: ta.latency.Dump(),
		}
		if ta.inter != nil {
			ts.HasInter = true
			ts.InterTokens, ts.InterLast, ts.InterPrimed = ta.inter.tokens, ta.inter.last, ta.inter.primed
		}
		if ta.batch != nil {
			ts.HasBatch = true
			ts.BatchTokens, ts.BatchLast, ts.BatchPrimed = ta.batch.tokens, ta.batch.last, ta.batch.primed
		}
		d.Tenants = append(d.Tenants, ts)
	}
	for key := range c.sessions {
		d.Sessions = append(d.Sessions, SessionState{Tenant: key.tenant, Action: key.action, Inflight: c.inflight[key]})
	}
	slices.SortFunc(d.Sessions, func(a, b SessionState) int {
		if a.Tenant != b.Tenant {
			return int(a.Tenant - b.Tenant)
		}
		return int(a.Action - b.Action)
	})
	return d
}

// Restore overwrites the controller's durable state from a dump. The fair
// queue must be empty (a freshly built controller); re-push the snapshotted
// queued jobs through Requeue afterwards, in original admission order.
func (c *Controller) Restore(d *StateDump) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenants = make(map[core.TenantID]*tenantAccount, len(d.Tenants))
	c.sessions = make(map[sessionKey]struct{}, len(d.Sessions))
	c.inflight = make(map[sessionKey]int)
	c.queue = NewFairQueue(c.cfg.Quantum, c.cfg.Weights)
	for _, slot := range d.Ring {
		tq := &tenantQueue{tenant: slot.Tenant, weight: slot.Weight, deficit: slot.Deficit}
		c.queue.byTenant[slot.Tenant] = tq
		c.queue.ring = append(c.queue.ring, tq)
	}
	c.queue.rotor = d.Rotor
	for _, ts := range d.Tenants {
		ta := &tenantAccount{
			issued: ts.Issued, admitted: ts.Admitted, throttled: ts.Throttled,
			rejected: ts.Rejected, shed: ts.Shed, completed: ts.Completed, failed: ts.Failed,
		}
		ta.latency.Restore(ts.Latency)
		if ts.HasInter {
			ta.inter = NewTokenBucket(c.cfg.InteractiveRate, c.cfg.InteractiveBurst)
			ta.inter.tokens, ta.inter.last, ta.inter.primed = ts.InterTokens, ts.InterLast, ts.InterPrimed
		}
		if ts.HasBatch {
			ta.batch = NewTokenBucket(c.cfg.BatchRate, c.cfg.BatchBurst)
			ta.batch.tokens, ta.batch.last, ta.batch.primed = ts.BatchTokens, ts.BatchLast, ts.BatchPrimed
		}
		c.tenants[ts.Tenant] = ta
	}
	for _, s := range d.Sessions {
		key := sessionKey{s.Tenant, s.Action}
		c.sessions[key] = struct{}{}
		if s.Inflight > 0 {
			c.inflight[key] = s.Inflight
		}
	}
	c.ladder.level = d.Level
	c.ladder.winStart = d.WinStart
	c.ladder.started = d.Started
	c.ladder.n = d.N
	c.ladder.breaches = d.Breaches
	c.ladder.badRun = d.BadRun
	c.ladder.goodRun = d.GoodRun
	c.ladder.history = slices.Clone(d.History)
}

// Requeue re-enters an already-admitted job into the fair queue without
// consuming tokens or touching accounting — the recovery path for jobs that
// were queued when the head crashed. Admission was already journaled; only
// the queue position is being rebuilt.
func (c *Controller) Requeue(j *core.Job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queue.Push(j)
}

// Rebind recomputes the session registry and in-flight depths from the
// live (dispatched, incomplete) jobs that survived recovery. The snapshot's
// session view may lag the journal — jobs admitted or completed after the
// snapshot shift the real depths — so the recovered job list, which the
// journal reconstructs exactly, is the authority. Token balances and
// accounting are left as Restore set them.
func (c *Controller) Rebind(jobs []*core.Job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight = make(map[sessionKey]int)
	for _, j := range jobs {
		key := sessionKey{j.Tenant, j.Action}
		c.sessions[key] = struct{}{}
		if j.Class == core.Interactive {
			c.inflight[key]++
		}
	}
}
