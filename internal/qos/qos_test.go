package qos

import (
	"math/rand"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
)

// mkJob builds a minimal job for queue/controller tests; tasks sets the DRR
// cost (its claim on the batch window).
func mkJob(id int, tenant core.TenantID, class core.Class, action core.ActionID, tasks int, issued units.Time) *core.Job {
	j := &core.Job{
		ID:     core.JobID(id),
		Class:  class,
		Action: action,
		Tenant: tenant,
		Issued: issued,
	}
	j.Tasks = make([]core.Task, tasks)
	for i := range j.Tasks {
		j.Tasks[i] = core.Task{Job: j, Index: i}
	}
	j.Remaining = tasks
	return j
}

// --- token bucket edges -----------------------------------------------------

func TestQoSTokenBucketZeroRate(t *testing.T) {
	// Rate <= 0 never refills: only the initial burst is ever available.
	b := NewTokenBucket(0, 3)
	now := units.Time(0)
	for i := 0; i < 3; i++ {
		if !b.Take(now, 1) {
			t.Fatalf("take %d of initial burst failed", i)
		}
	}
	if b.Take(now.Add(units.Duration(1e12)), 1) {
		t.Fatal("zero-rate bucket refilled")
	}
	if got := b.Tokens(now.Add(units.Duration(2e12))); got != 0 {
		t.Fatalf("zero-rate balance = %v, want 0", got)
	}
}

func TestQoSTokenBucketBurstOne(t *testing.T) {
	// Burst below 1 is floored at 1 so a configured tenant can always make
	// progress; the bucket then strictly alternates take/deny at rate 1/s.
	b := NewTokenBucket(1, 0.25)
	if b.Burst != 1 {
		t.Fatalf("burst = %v, want floor at 1", b.Burst)
	}
	now := units.Time(0)
	if !b.Take(now, 1) {
		t.Fatal("first take from full bucket failed")
	}
	if b.Take(now, 1) {
		t.Fatal("second immediate take should fail at burst=1")
	}
	now = now.Add(units.Duration(1e9)) // +1s = +1 token
	if !b.Take(now, 1) {
		t.Fatal("take after full refill interval failed")
	}
	// Time moving backwards must not mint tokens.
	if b.Take(units.Time(0), 1) {
		t.Fatal("backwards time refilled the bucket")
	}
}

func TestQoSTokenBucketDebt(t *testing.T) {
	b := NewTokenBucket(10, 2)
	now := units.Time(0)
	if !b.Take(now, 2) {
		t.Fatal("draining the burst failed")
	}
	// Empty bucket: plain Take fails, debt admits until the ceiling.
	if b.Take(now, 1) {
		t.Fatal("take from empty bucket succeeded")
	}
	if !b.TakeDebt(now, 1, 2) || !b.TakeDebt(now, 1, 2) {
		t.Fatal("debt takes within ceiling failed")
	}
	if b.TakeDebt(now, 1, 2) {
		t.Fatal("debt take past ceiling succeeded")
	}
	if got := b.Tokens(now); got != -2 {
		t.Fatalf("balance = %v, want -2", got)
	}
	// Refill pays the debt down before new admissions succeed.
	now = now.Add(units.Duration(300 * 1e6)) // +0.3s ⇒ +3 tokens ⇒ balance 1
	if !b.Take(now, 1) {
		t.Fatal("take after debt repaid failed")
	}
}

// --- DRR fair queue ---------------------------------------------------------

// TestDRRStarvationFreedom is a property test in the invariants style: random
// multi-tenant push/pop interleavings must never strand a job, must preserve
// intra-tenant FIFO order, and must be bit-deterministic for a given seed.
func TestDRRStarvationFreedom(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		order1 := drrRun(t, seed)
		order2 := drrRun(t, seed)
		if len(order1) != len(order2) {
			t.Fatalf("seed %d: run lengths differ: %d vs %d", seed, len(order1), len(order2))
		}
		for i := range order1 {
			if order1[i] != order2[i] {
				t.Fatalf("seed %d: pop order diverged at %d: %v vs %v", seed, i, order1[i], order2[i])
			}
		}
	}
}

// drrRun drives one randomized scenario and checks the invariants; it
// returns the pop order for the determinism cross-check.
func drrRun(t *testing.T, seed int64) []core.JobID {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tenants := 2 + rng.Intn(5)
	weights := make(map[core.TenantID]int)
	for k := 1; k <= tenants; k++ {
		weights[core.TenantID(k)] = 1 + rng.Intn(3)
	}
	q := NewFairQueue(1+rng.Intn(12), weights)

	pushed := make(map[core.JobID]*core.Job)
	lastPopped := make(map[core.TenantID]core.JobID) // FIFO check per tenant+class
	var order []core.JobID
	nextID := 1

	pop := func() {
		var out []*core.Job
		out = q.PopInteractive(out)
		out = q.PopBatch(out, 1+rng.Intn(8))
		for _, j := range out {
			if _, ok := pushed[j.ID]; !ok {
				t.Fatalf("seed %d: popped job %d twice or never pushed", seed, j.ID)
			}
			delete(pushed, j.ID)
			if j.Class == core.Batch {
				if prev, ok := lastPopped[j.Tenant]; ok && j.ID < prev {
					t.Fatalf("seed %d: tenant %d batch FIFO violated: %d after %d", seed, j.Tenant, j.ID, prev)
				}
				lastPopped[j.Tenant] = j.ID
			}
			order = append(order, j.ID)
		}
	}

	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0, 1: // push
			class := core.Batch
			if rng.Intn(3) == 0 {
				class = core.Interactive
			}
			j := mkJob(nextID, core.TenantID(1+rng.Intn(tenants)), class,
				core.ActionID(rng.Intn(3)), 1+rng.Intn(6), units.Time(step))
			nextID++
			pushed[j.ID] = j
			q.Push(j)
		case 2: // pop a window
			pop()
		case 3: // remove a queued job (crash cleanup path); lowest ID so the
			// victim choice itself is deterministic
			var victim *core.Job
			for _, j := range pushed {
				if victim == nil || j.ID < victim.ID {
					victim = j
				}
			}
			if victim != nil && q.Remove(victim) {
				delete(pushed, victim.ID)
			}
		}
	}
	// Drain: every remaining job must come out within a bounded number of
	// passes — the starvation-freedom property.
	for pass := 0; len(pushed) > 0; pass++ {
		if pass > 1000 {
			t.Fatalf("seed %d: %d jobs starved in queue", seed, len(pushed))
		}
		pop()
	}
	if q.Len() != 0 || q.BatchLen() != 0 {
		t.Fatalf("seed %d: queue not empty after drain: len=%d batch=%d", seed, q.Len(), q.BatchLen())
	}
	return order
}

// TestDRRWeightedShare checks that two backlogged tenants split the batch
// window in proportion to their weights.
func TestDRRWeightedShare(t *testing.T) {
	q := NewFairQueue(4, map[core.TenantID]int{1: 1, 2: 3})
	for i := 0; i < 200; i++ {
		q.Push(mkJob(2*i+1, 1, core.Batch, 0, 2, units.Time(i)))
		q.Push(mkJob(2*i+2, 2, core.Batch, 0, 2, units.Time(i)))
	}
	got := q.PopBatch(nil, 100)
	counts := map[core.TenantID]int{}
	for _, j := range got {
		counts[j.Tenant]++
	}
	// Weight ratio 1:3 ⇒ tenant 2 gets ~75 of 100, within one visit's slack.
	if counts[2] < counts[1]*2 {
		t.Fatalf("weighted share not honored: tenant1=%d tenant2=%d", counts[1], counts[2])
	}
	if counts[1] == 0 {
		t.Fatal("low-weight tenant starved outright")
	}
}

// TestDRRInteractiveRoundRobin checks interactive frames drain fully and
// interleave across tenants rather than one tenant's frames always leading.
func TestDRRInteractiveRoundRobin(t *testing.T) {
	q := NewFairQueue(8, nil)
	for i := 0; i < 3; i++ {
		q.Push(mkJob(10+i, 1, core.Interactive, 1, 1, units.Time(i)))
		q.Push(mkJob(20+i, 2, core.Interactive, 2, 1, units.Time(i)))
	}
	got := q.PopInteractive(nil)
	if len(got) != 6 {
		t.Fatalf("drained %d interactive jobs, want 6", len(got))
	}
	// One frame per tenant per round: tenants must alternate.
	for i := 0; i+1 < len(got); i += 2 {
		if got[i].Tenant == got[i+1].Tenant {
			t.Fatalf("round %d served tenant %d twice before the other", i/2, got[i].Tenant)
		}
	}
}

// --- controller -------------------------------------------------------------

// TestQoSAdmissionPartition drives a controller with a bursty tenant and
// verifies every issued job lands in exactly one decision bucket.
func TestQoSAdmissionPartition(t *testing.T) {
	c := NewController(&Config{
		InteractiveRate: 10, InteractiveBurst: 5,
		BatchRate: 4, BatchBurst: 2,
		ThrottleWindow: 500 * units.Millisecond,
	})
	rng := rand.New(rand.NewSource(42))
	now := units.Time(0)
	counts := map[Decision]int64{}
	for i := 1; i <= 500; i++ {
		class := core.Interactive
		if rng.Intn(2) == 0 {
			class = core.Batch
		}
		j := mkJob(i, core.TenantID(1+rng.Intn(3)), class, core.ActionID(rng.Intn(4)), 1, now)
		dec, victim := c.Admit(j, now)
		if victim != nil {
			t.Fatalf("unexpected stale-shed victim at level normal")
		}
		counts[dec]++
		now = now.Add(units.Duration(rng.Int63n(20 * 1e6))) // 0–20ms gaps
	}
	out := c.Outcome()
	var issued, partition int64
	for _, ts := range out.Tenants {
		issued += ts.Issued
		partition += ts.Admitted + ts.Throttled + ts.Rejected + ts.ShedOnArrival()
		if ts.ShedOnArrival() < 0 {
			t.Fatalf("tenant %d negative shed-on-arrival", ts.Tenant)
		}
	}
	if issued != 500 || partition != 500 {
		t.Fatalf("decision partition broken: issued=%d partition=%d", issued, partition)
	}
	if counts[Rejected] == 0 || counts[Throttled] == 0 {
		t.Fatalf("overload run never throttled/rejected: %v", counts)
	}
	if out.Admitted != counts[Admitted] || out.Throttled != counts[Throttled] || out.Rejected != counts[Rejected] {
		t.Fatalf("outcome aggregates disagree with observed decisions")
	}
}

// TestQoSLadderEngageAndRecover drives the ladder with sustained SLO
// breaches, checks it climbs monotonically one rung at a time with the rung
// behaviors switching on, then feeds clean completions and checks a full
// LIFO recovery to normal.
func TestQoSLadderEngageAndRecover(t *testing.T) {
	cfg := &Config{
		InteractiveRate: 1000, InteractiveBurst: 1000,
		InteractiveSLO: 10 * units.Millisecond,
		Window:         50 * units.Millisecond,
		StepWindows:    2, RecoverWindows: 3,
	}
	c := NewController(cfg)
	now := units.Time(0)
	id := 1
	observe := func(lat units.Duration) {
		j := mkJob(id, 1, core.Interactive, 1, 1, now)
		id++
		if dec, _ := c.Admit(j, now); !dec.Entered() {
			t.Fatalf("admission refused during ladder test: %v", dec)
		}
		c.PopInteractive(nil)
		c.Observe(j, lat, now)
		now = now.Add(5 * units.Millisecond)
	}

	prev := LevelNormal
	for step := 0; c.Level() < LevelRejectSessions; step++ {
		if step > 2000 {
			t.Fatal("ladder never reached reject-sessions under sustained breach")
		}
		observe(50 * units.Millisecond) // every completion 5× over SLO
		if l := c.Level(); l != prev {
			if l != prev+1 {
				t.Fatalf("ladder skipped from %v to %v", prev, l)
			}
			prev = l
		}
	}
	if c.ResolutionScale() != 0.5 {
		t.Fatalf("resolution scale = %v at %v, want 0.5", c.ResolutionScale(), c.Level())
	}
	// Rung 4: a brand-new session is refused, the established one still flows.
	newcomer := mkJob(id, 9, core.Interactive, 99, 1, now)
	id++
	if dec, _ := c.Admit(newcomer, now); dec != Rejected {
		t.Fatalf("new session at reject-sessions rung: %v, want Rejected", dec)
	}
	// Recovery: clean completions walk back down to normal.
	for step := 0; c.Level() != LevelNormal; step++ {
		if step > 5000 {
			t.Fatalf("ladder stuck at %v during recovery", c.Level())
		}
		observe(1 * units.Millisecond)
	}
	hist := c.History()
	if len(hist) < 8 {
		t.Fatalf("history too short for full engage+recover: %d transitions", len(hist))
	}
	out := c.Outcome()
	if out.MaxLevel != int(LevelRejectSessions) || out.FinalLevel != int(LevelNormal) {
		t.Fatalf("outcome max/final = %d/%d, want 4/0", out.MaxLevel, out.FinalLevel)
	}
}

// TestQoSShedStaleSupersede checks the rung-3 behavior: a newer frame
// supersedes its action's queued frame, and in-flight depth is bounded.
func TestQoSShedStaleSupersede(t *testing.T) {
	c := NewController(&Config{
		InteractiveRate: 1000, InteractiveBurst: 1000,
		AlwaysShedStale: true, ActionDepth: 2,
	})
	now := units.Time(0)
	j1 := mkJob(1, 1, core.Interactive, 7, 1, now)
	j2 := mkJob(2, 1, core.Interactive, 7, 1, now.Add(units.Millisecond))
	if dec, v := c.Admit(j1, now); dec != Admitted || v != nil {
		t.Fatalf("first frame: %v victim=%v", dec, v)
	}
	dec, victim := c.Admit(j2, now.Add(units.Millisecond))
	if dec != Admitted || victim != j1 {
		t.Fatalf("second frame should supersede first: dec=%v victim=%v", dec, victim)
	}
	if c.QueueLen() != 1 {
		t.Fatalf("queue len = %d after supersede, want 1", c.QueueLen())
	}
	// Dispatch j2 (leaves the queue, stays in flight), then flood the same
	// action: with nothing queued to supersede, depth bounds arrivals.
	c.PopInteractive(nil)
	var sheds int
	for i := 3; i < 10; i++ {
		j := mkJob(i, 1, core.Interactive, 7, 1, now)
		d, v := c.Admit(j, now)
		if d == ShedStale {
			sheds++
		} else if d.Entered() && v == nil {
			c.PopInteractive(nil) // dispatched, occupying in-flight depth
		}
	}
	if sheds == 0 {
		t.Fatal("in-flight depth bound never shed an arrival")
	}
	out := c.Outcome()
	if out.Shed != int64(sheds)+1 { // +1 for the superseded j1
		t.Fatalf("outcome shed = %d, want %d", out.Shed, sheds+1)
	}
}
