package qos

import "vizsched/internal/core"

// FairQueue replaces the head's single FIFO job queue with per-tenant
// queues served deficit-round-robin. Interactive and batch jobs are kept
// apart inside each tenant: interactive work is always drained fully (the
// paper's interactive-first semantics are preserved — fairness only decides
// the *order* tenants' frames are presented to the scheduler), while batch
// work is metered by DRR with a per-visit quantum scaled by tenant weight,
// so one tenant's animation render cannot monopolize the batch window.
//
// The tenant ring is kept in first-activation order and the rotor advances
// deterministically, so identical push/pop sequences yield identical
// orders — a requirement for the simulator's bit-reproducible results.
type FairQueue struct {
	quantum  int
	weights  map[core.TenantID]int
	byTenant map[core.TenantID]*tenantQueue
	ring     []*tenantQueue
	rotor    int
	size     int
	batch    int
}

// tenantQueue is one tenant's pending work, split by class.
type tenantQueue struct {
	tenant core.TenantID
	weight int
	inter  []*core.Job
	batch  []*core.Job
	// deficit is the DRR deficit counter in task units; it accumulates
	// quantum×weight per service visit and resets when the batch queue
	// empties (no banking while idle — the classic DRR rule).
	deficit int
}

// NewFairQueue builds a queue with the given DRR quantum (task units per
// visit, minimum 1) and optional per-tenant weights (default 1).
func NewFairQueue(quantum int, weights map[core.TenantID]int) *FairQueue {
	if quantum < 1 {
		quantum = 1
	}
	return &FairQueue{
		quantum:  quantum,
		weights:  weights,
		byTenant: make(map[core.TenantID]*tenantQueue),
	}
}

// jobCost is a job's DRR cost: its task count (its claim on node FIFOs).
func jobCost(j *core.Job) int {
	if len(j.Tasks) > 1 {
		return len(j.Tasks)
	}
	return 1
}

func (q *FairQueue) tq(t core.TenantID) *tenantQueue {
	tq := q.byTenant[t]
	if tq == nil {
		w := 1
		if q.weights != nil && q.weights[t] > 0 {
			w = q.weights[t]
		}
		tq = &tenantQueue{tenant: t, weight: w}
		q.byTenant[t] = tq
		q.ring = append(q.ring, tq)
	}
	return tq
}

// Push enqueues a job on its tenant's class queue.
func (q *FairQueue) Push(j *core.Job) {
	tq := q.tq(j.Tenant)
	if j.Class == core.Interactive {
		tq.inter = append(tq.inter, j)
	} else {
		tq.batch = append(tq.batch, j)
		q.batch++
	}
	q.size++
}

// Len returns the number of queued jobs; BatchLen just the batch ones.
func (q *FairQueue) Len() int      { return q.size }
func (q *FairQueue) BatchLen() int { return q.batch }

// PopInteractive drains every queued interactive job into dst, visiting
// tenants round-robin from the rotor so no tenant's frames are always
// presented last. Within a tenant, frames stay FIFO.
func (q *FairQueue) PopInteractive(dst []*core.Job) []*core.Job {
	remaining := q.size - q.batch
	for remaining > 0 {
		for i := 0; i < len(q.ring) && remaining > 0; i++ {
			tq := q.ring[(q.rotor+i)%len(q.ring)]
			if len(tq.inter) == 0 {
				continue
			}
			dst = append(dst, tq.inter[0])
			copy(tq.inter, tq.inter[1:])
			tq.inter = tq.inter[:len(tq.inter)-1]
			q.size--
			remaining--
		}
	}
	return dst
}

// PopBatch serves batch queues deficit-round-robin, appending at most max
// jobs to dst. Each visited tenant earns quantum×weight deficit and pops
// whole jobs while the deficit covers their task count; an emptied queue
// forfeits its remaining deficit. The rotor persists across calls so
// service resumes where it left off.
func (q *FairQueue) PopBatch(dst []*core.Job, max int) []*core.Job {
	popped := 0
	for popped < max && q.batch > 0 {
		tq := q.ring[q.rotor%len(q.ring)]
		if len(tq.batch) == 0 {
			tq.deficit = 0
			q.rotor = (q.rotor + 1) % len(q.ring)
			continue
		}
		tq.deficit += q.quantum * tq.weight
		for len(tq.batch) > 0 && popped < max {
			j := tq.batch[0]
			cost := jobCost(j)
			if cost > tq.deficit {
				break
			}
			tq.deficit -= cost
			copy(tq.batch, tq.batch[1:])
			tq.batch = tq.batch[:len(tq.batch)-1]
			dst = append(dst, j)
			q.size--
			q.batch--
			popped++
		}
		if len(tq.batch) == 0 {
			tq.deficit = 0
		}
		q.rotor = (q.rotor + 1) % len(q.ring)
	}
	return dst
}

// Remove deletes a specific queued job (crash cleanup, supersede), keeping
// intra-tenant FIFO order. Returns whether the job was found.
func (q *FairQueue) Remove(j *core.Job) bool {
	tq := q.byTenant[j.Tenant]
	if tq == nil {
		return false
	}
	lane := &tq.inter
	if j.Class == core.Batch {
		lane = &tq.batch
	}
	for i, queued := range *lane {
		if queued == j {
			copy((*lane)[i:], (*lane)[i+1:])
			*lane = (*lane)[:len(*lane)-1]
			q.size--
			if j.Class == core.Batch {
				q.batch--
			}
			return true
		}
	}
	return false
}

// OldestInteractive returns the queued interactive job with the earliest
// issue time (ties broken by job id) — the MaxQueue shedding victim.
func (q *FairQueue) OldestInteractive() *core.Job {
	var oldest *core.Job
	for _, tq := range q.ring {
		for _, j := range tq.inter {
			if oldest == nil || j.Issued < oldest.Issued ||
				(j.Issued == oldest.Issued && j.ID < oldest.ID) {
				oldest = j
			}
		}
	}
	return oldest
}

// StaleInteractive returns the oldest queued interactive job of the same
// tenant and action as j (excluding j itself) — the frame a newer frame of
// the same action supersedes under the shed-stale ladder rung.
func (q *FairQueue) StaleInteractive(j *core.Job) *core.Job {
	tq := q.byTenant[j.Tenant]
	if tq == nil {
		return nil
	}
	for _, queued := range tq.inter {
		if queued != j && queued.Action == j.Action {
			return queued
		}
	}
	return nil
}
