package qos

import "vizsched/internal/units"

// TokenBucket meters one tenant/class stream in virtual time. Tokens refill
// continuously at Rate per second up to Burst; each admitted job spends one
// token (or more, when the degradation ladder raises the batch price). All
// arithmetic is on units.Time so the simulator and the live head produce
// identical decisions for identical timelines.
type TokenBucket struct {
	// Rate is the refill rate in tokens per second. Rate <= 0 means the
	// bucket never refills: only the initial Burst is ever available.
	Rate float64
	// Burst is the bucket capacity; the bucket starts full.
	Burst float64

	tokens float64
	last   units.Time
	primed bool
}

// NewTokenBucket returns a bucket that starts full at burst tokens.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{Rate: rate, Burst: burst, tokens: burst}
}

// refill advances the bucket to now. Time moving backwards (never in the
// DES, possible across wall-clock adjustments) is treated as no elapsed time.
func (b *TokenBucket) refill(now units.Time) {
	if !b.primed {
		b.primed = true
		b.last = now
		return
	}
	if now <= b.last {
		return
	}
	if b.Rate > 0 {
		b.tokens += b.Rate * now.Sub(b.last).Seconds()
		if b.tokens > b.Burst {
			b.tokens = b.Burst
		}
	}
	b.last = now
}

// Tokens reports the balance at now (negative while in throttle debt).
func (b *TokenBucket) Tokens(now units.Time) float64 {
	b.refill(now)
	return b.tokens
}

// Take spends cost tokens if the balance covers it.
func (b *TokenBucket) Take(now units.Time, cost float64) bool {
	b.refill(now)
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}

// TakeDebt spends cost tokens even when the balance cannot cover it, as
// long as the resulting debt stays within maxDebt — the Throttle decision:
// the job is admitted against future refill, pushing the tenant's next
// admissions out. Returns false (and leaves the balance alone) when the
// debt ceiling would be crossed.
func (b *TokenBucket) TakeDebt(now units.Time, cost, maxDebt float64) bool {
	b.refill(now)
	if b.tokens-cost < -maxDebt {
		return false
	}
	b.tokens -= cost
	return true
}
