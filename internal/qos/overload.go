package qos

import "vizsched/internal/units"

// Level is a rung of the degradation ladder. Overload steps down one rung
// at a time and recovers in reverse order, so the cheapest mitigation is
// always tried first and withdrawn last-in-first-out.
type Level int

// Ladder rungs, mildest first.
const (
	// LevelNormal: no degradation.
	LevelNormal Level = iota
	// LevelHalveBatch: batch admissions cost double tokens — batch
	// throughput halves, freeing nodes for interactive frames.
	LevelHalveBatch
	// LevelDegradeResolution: interactive frames render at half linear
	// resolution (a quarter of the pixels) through the image pipeline.
	LevelDegradeResolution
	// LevelShedStale: stale interactive frames are shed — a new frame
	// supersedes an older queued frame of its action, and frames arriving
	// while the action already has ActionDepth unfinished frames in flight
	// are dropped outright.
	LevelShedStale
	// LevelRejectSessions: no new (tenant, action) sessions are accepted;
	// existing sessions keep their (degraded) service.
	LevelRejectSessions
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelHalveBatch:
		return "halve-batch"
	case LevelDegradeResolution:
		return "degrade-resolution"
	case LevelShedStale:
		return "shed-stale"
	case LevelRejectSessions:
		return "reject-sessions"
	default:
		return "level(?)"
	}
}

// LevelChange records one ladder transition for post-run inspection.
type LevelChange struct {
	At    units.Time
	Level Level
}

// Overload is the ladder controller. It watches interactive job latency in
// fixed virtual-time windows: a window where more than BreachFraction of
// completions exceeded the SLO is "bad", others are "good" (an empty window
// counts as good — no interactive work means no one is hurting). StepWindows
// consecutive bad windows escalate one rung; RecoverWindows consecutive good
// windows de-escalate one. The asymmetry is deliberate hysteresis: step in
// quickly, back out slowly, never oscillate within a window.
type Overload struct {
	slo         units.Duration
	window      units.Duration
	breachFrac  float64
	stepWins    int
	recoverWins int

	level    Level
	winStart units.Time
	started  bool
	n        int64 // interactive completions in the open window
	breaches int64 // of which exceeded the SLO
	badRun   int
	goodRun  int

	history []LevelChange
}

func newOverload(cfg *Config) *Overload {
	return &Overload{
		slo:         cfg.InteractiveSLO,
		window:      cfg.Window,
		breachFrac:  cfg.BreachFraction,
		stepWins:    cfg.StepWindows,
		recoverWins: cfg.RecoverWindows,
	}
}

// Level returns the current rung.
func (o *Overload) Level() Level { return o.level }

// History returns the recorded transitions in order.
func (o *Overload) History() []LevelChange { return o.history }

// Observe folds one interactive completion latency in at virtual time now,
// closing any windows that have elapsed. It returns true when the ladder
// changed level (callers emit a trace event and apply the new rung).
func (o *Overload) Observe(lat units.Duration, now units.Time) bool {
	if !o.started {
		o.started = true
		o.winStart = now
	}
	changed := o.advance(now)
	o.n++
	if lat > o.slo {
		o.breaches++
	}
	return changed
}

// Tick closes elapsed windows without recording a sample — the recovery
// path for a head that has gone quiet (sim horizons keep completing jobs,
// but a live head may see traffic stop entirely). Returns true on a level
// change.
func (o *Overload) Tick(now units.Time) bool {
	if !o.started {
		return false
	}
	return o.advance(now)
}

// advance closes every window boundary that now has passed, classifying
// each and applying the streak rules. Long quiet gaps close many empty
// windows, all good — exactly the signal that recovery deserves.
func (o *Overload) advance(now units.Time) bool {
	changed := false
	for now.Sub(o.winStart) >= o.window {
		bad := o.n > 0 && float64(o.breaches) > o.breachFrac*float64(o.n)
		if bad {
			o.badRun++
			o.goodRun = 0
			if o.badRun >= o.stepWins && o.level < LevelRejectSessions {
				o.level++
				o.badRun = 0
				o.history = append(o.history, LevelChange{At: o.winStart.Add(o.window), Level: o.level})
				changed = true
			}
		} else {
			o.goodRun++
			o.badRun = 0
			if o.goodRun >= o.recoverWins && o.level > LevelNormal {
				o.level--
				o.goodRun = 0
				o.history = append(o.history, LevelChange{At: o.winStart.Add(o.window), Level: o.level})
				changed = true
			}
		}
		o.n, o.breaches = 0, 0
		o.winStart = o.winStart.Add(o.window)
	}
	return changed
}

// BatchCostFactor is the token-price multiplier for batch admissions at the
// current rung: 2 (half throughput) at LevelHalveBatch and deeper.
func (o *Overload) BatchCostFactor() float64 {
	if o.level >= LevelHalveBatch {
		return 2
	}
	return 1
}

// ResolutionScale is the linear image-resolution factor for interactive
// frames: 0.5 at LevelDegradeResolution and deeper, 1 otherwise.
func (o *Overload) ResolutionScale() float64 {
	if o.level >= LevelDegradeResolution {
		return 0.5
	}
	return 1
}

// ShedStale reports whether stale interactive frames should be shed.
func (o *Overload) ShedStale() bool { return o.level >= LevelShedStale }

// RejectSessions reports whether new sessions should be rejected.
func (o *Overload) RejectSessions() bool { return o.level >= LevelRejectSessions }
