// Package fracshare is the fractional-capacity subsystem (§5.13): it lets a
// rendering node run more than one task at a time by splitting the node's
// capacity into shares, and re-prices every running task's completion time
// deterministically whenever a share changes mid-task.
//
// The model follows "Dynamic Fractional Resource Scheduling vs. Batch
// Scheduling" (Casanova, Stillwell, Vivien — arXiv:1106.4985): a node
// exposes K task slots; compute capacity is divided linearly (a task at
// share s progresses at rate s), while I/O-heavy tasks contend
// super-linearly — co-running disk loads thrash the spindle, so n I/O-heavy
// tasks each progress at share/n^(γ−1) for a configurable γ ≥ 1. A share of
// zero suspends a task entirely, which is how a co-scheduled batch task is
// preempted the instant an interactive frame lands on its node.
//
// Everything here runs on the simulator's virtual clock and uses only
// arithmetic on the inputs it is handed, so results are bit-reproducible at
// any worker count. The same Slot accounting drives the live service's
// worker slots, where the operating system does the actual time-slicing and
// the accounting only feeds the /metrics gauges.
package fracshare

import (
	"fmt"
	"math"

	"vizsched/internal/units"
)

// Defaults for the zero fields of Config.
const (
	// DefaultSlots is K, the per-node task-slot count: one demand task plus
	// one co-scheduled guest is the configuration OURS's co-scheduling uses,
	// and two concurrent tasks is also the DFRS paper's most common packing.
	DefaultSlots = 2
	// DefaultIOGamma is the super-linear I/O contention exponent: two
	// co-running loads each see share/2^0.5 ≈ 71% of their fair disk share.
	DefaultIOGamma = 1.5
	// DefaultCoShare is the fractional share a co-scheduled batch task runs
	// at while its node is otherwise idle. Half capacity keeps the guest's
	// memory-bandwidth and cache footprint small enough that the paper's
	// hit-cost model for the next interactive frame stays honest.
	DefaultCoShare = 0.5
)

// Config enables and tunes the fractional-capacity layer. The zero value of
// each field selects its default; a nil *Config disables the subsystem
// entirely (the engine and the live head both treat nil as "off", keeping
// golden outputs bit-identical).
type Config struct {
	// Slots is K, the maximum number of concurrently running tasks per node.
	Slots int
	// IOGamma is the super-linear I/O contention exponent γ ≥ 1: n co-running
	// I/O-heavy tasks each progress at share/n^(γ−1). 1 means disk bandwidth
	// divides as fairly as compute does.
	IOGamma float64
	// CoShare is the share a co-scheduled batch task receives while no demand
	// task runs on its node (OURS's ε-guard reclaim, §5.13). Negative
	// disables co-scheduling while keeping slot execution; zero selects
	// DefaultCoShare.
	CoShare float64
}

// SlotCount returns the effective K.
func (c *Config) SlotCount() int {
	if c == nil || c.Slots <= 0 {
		return DefaultSlots
	}
	return c.Slots
}

// Gamma returns the effective I/O contention exponent.
func (c *Config) Gamma() float64 {
	if c == nil || c.IOGamma < 1 {
		return DefaultIOGamma
	}
	return c.IOGamma
}

// CoShareValue returns the effective co-scheduled share in [0,1]; zero means
// co-scheduling is disabled.
func (c *Config) CoShareValue() float64 {
	if c == nil || c.CoShare < 0 {
		return 0
	}
	s := c.CoShare
	if s == 0 {
		s = DefaultCoShare
	}
	if s > 1 {
		s = 1
	}
	return s
}

// IOPenalty returns the slowdown divisor for one of nIO co-running I/O-heavy
// tasks under exponent gamma: nIO^(γ−1), floored at 1.
func IOPenalty(nIO int, gamma float64) float64 {
	if nIO <= 1 || gamma <= 1 {
		return 1
	}
	return math.Pow(float64(nIO), gamma-1)
}

// Slot is one running task's progress account under a time-varying share.
// The task carries Total full-share work; at any instant it progresses at
// rate = share/penalty full-share seconds per virtual second. SetRate folds
// the elapsed progress in before changing the rate, so the completion time
// depends only on the piecewise-constant rate function — not on how often or
// in what call pattern the owner re-prices — and a rate ≤ 1 can never finish
// the task before its full-share lower bound. Both properties are pinned by
// the package's property tests.
type Slot struct {
	total float64 // full-share work, in duration units
	done  float64 // work served so far, same units
	rate  float64 // current progress rate in (0,1]; 0 = suspended
	last  units.Time
}

// NewSlot opens a progress account for a task of the given full-share
// execution time. The slot starts suspended (rate 0) at now; the owner calls
// SetRate to start it.
func NewSlot(total units.Duration, now units.Time) *Slot {
	if total < 0 {
		total = 0
	}
	return &Slot{total: float64(total), last: now}
}

// advance folds progress since the last account into done. Monotone time is
// required; calls with now ≤ last are no-ops, which makes redundant
// re-pricing harmless.
func (s *Slot) advance(now units.Time) {
	if now <= s.last {
		return
	}
	if s.rate > 0 {
		s.done += float64(now.Sub(s.last)) * s.rate
		if s.done > s.total {
			s.done = s.total
		}
	}
	s.last = now
}

// SetRate re-prices the slot at now: elapsed progress is credited at the old
// rate, then the rate becomes share/penalty. Share is clamped to [0,1] and
// penalty floored at 1, so the rate never exceeds 1 — the invariant behind
// the full-share lower bound. Share 0 suspends the slot (preemption).
func (s *Slot) SetRate(now units.Time, share, penalty float64) {
	s.advance(now)
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	if penalty < 1 {
		penalty = 1
	}
	s.rate = share / penalty
}

// Rate returns the current progress rate.
func (s *Slot) Rate() float64 { return s.rate }

// Suspended reports whether the slot is currently making no progress.
func (s *Slot) Suspended() bool { return s.rate == 0 }

// Remaining returns the virtual time until completion at the current rate.
// ok is false while the slot is suspended (it will never complete without a
// new rate). A finished slot returns (0, true).
func (s *Slot) Remaining(now units.Time) (units.Duration, bool) {
	s.advance(now)
	left := s.total - s.done
	if left <= 0 {
		return 0, true
	}
	if s.rate == 0 {
		return 0, false
	}
	d := units.Duration(math.Ceil(left / s.rate))
	return d, true
}

// Finished reports whether the slot's work is fully served as of now.
func (s *Slot) Finished(now units.Time) bool {
	s.advance(now)
	return s.total-s.done <= 0
}

// Finish force-completes the slot at now — the owner calls it when the
// completion timer it armed from Remaining fires, absorbing the sub-unit
// rounding between float progress and the integer virtual clock.
func (s *Slot) Finish(now units.Time) {
	s.advance(now)
	s.done = s.total
}

// DoneWork returns the full-share work served so far.
func (s *Slot) DoneWork(now units.Time) units.Duration {
	s.advance(now)
	return units.Duration(s.done)
}

// String renders the slot's progress for debugging.
func (s *Slot) String() string {
	return fmt.Sprintf("slot(%.0f/%.0f @%.3f)", s.done, s.total, s.rate)
}

// Meter integrates each node's busy share over virtual time — the per-node
// utilization account behind the fracshare gauges and the sweep's
// reclaimed-idle column. The owner calls Set whenever a node's aggregate
// busy share changes; the integral accumulates exactly because the share is
// piecewise constant between calls.
type Meter struct {
	share []float64
	last  []units.Time
	busy  []float64 // ∫ share dt per node, in duration units
}

// NewMeter builds a meter over n nodes, all idle at time zero.
func NewMeter(n int) *Meter {
	return &Meter{
		share: make([]float64, n),
		last:  make([]units.Time, n),
		busy:  make([]float64, n),
	}
}

// Set updates node k's aggregate busy share (clamped to [0,1]) at now,
// folding the previous share's span into the busy integral.
func (m *Meter) Set(k int, share float64, now units.Time) {
	if k < 0 || k >= len(m.share) {
		return
	}
	if now > m.last[k] {
		m.busy[k] += float64(now.Sub(m.last[k])) * m.share[k]
		m.last[k] = now
	}
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	m.share[k] = share
}

// Finish folds every node's open span up to the horizon.
func (m *Meter) Finish(horizon units.Time) {
	for k := range m.share {
		m.Set(k, m.share[k], horizon)
	}
}

// Busy returns node k's accumulated busy-share integral.
func (m *Meter) Busy(k int) units.Duration {
	if k < 0 || k >= len(m.busy) {
		return 0
	}
	return units.Duration(m.busy[k])
}

// Fraction returns node k's mean busy share over the horizon.
func (m *Meter) Fraction(k int, horizon units.Time) float64 {
	if horizon <= 0 || k < 0 || k >= len(m.busy) {
		return 0
	}
	return m.busy[k] / float64(horizon)
}

// Nodes returns the meter's node count.
func (m *Meter) Nodes() int { return len(m.share) }
