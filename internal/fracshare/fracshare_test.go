package fracshare

import (
	"math"
	"math/rand"
	"testing"

	"vizsched/internal/units"
)

// ratePoint is one step of a piecewise-constant share schedule.
type ratePoint struct {
	at      units.Time
	share   float64
	penalty float64
}

// randomSchedule draws a monotone share schedule with grows, shrinks, and
// preemptions (share 0 spans).
func randomSchedule(rng *rand.Rand, steps int, span units.Duration) []ratePoint {
	pts := make([]ratePoint, 0, steps)
	at := units.Time(0)
	for i := 0; i < steps; i++ {
		at = at.Add(units.Duration(1 + rng.Int63n(int64(span))))
		share := rng.Float64()
		if rng.Intn(4) == 0 {
			share = 0 // preemption span
		}
		penalty := 1 + rng.Float64()*3
		if rng.Intn(3) == 0 {
			penalty = 1
		}
		pts = append(pts, ratePoint{at, share, penalty})
	}
	return pts
}

// playOut applies the schedule and then runs the slot at full share until
// completion, returning the completion time.
func playOut(s *Slot, pts []ratePoint, start units.Time) units.Time {
	now := start
	for _, p := range pts {
		now = p.at
		s.SetRate(now, p.share, p.penalty)
	}
	s.SetRate(now, 1, 1)
	rem, ok := s.Remaining(now)
	if !ok {
		panic("full-share slot reported suspended")
	}
	end := now.Add(rem)
	s.Finish(end)
	return end
}

// TestSlotFullShareLowerBound: however the share grows, shrinks, or preempts
// mid-task, a task can never complete earlier than its full-share execution
// time — the rate is capped at 1, so serving Total work takes at least Total.
func TestSlotFullShareLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		total := units.Duration(1+rng.Int63n(int64(10*units.Second))) + units.Millisecond
		s := NewSlot(total, 0)
		pts := randomSchedule(rng, 1+rng.Intn(12), 100*units.Millisecond)
		end := playOut(s, pts, 0)
		if end < units.Time(total) {
			t.Fatalf("trial %d: completed at %v, before full-share lower bound %v (schedule %+v)",
				trial, end, total, pts)
		}
	}
}

// TestSlotRepriceOrderIndependent: interleaving redundant accounting calls
// (Remaining probes, re-asserting the current rate) at arbitrary
// intermediate times must not change the completion time — the account
// depends only on the piecewise-constant rate function.
func TestSlotRepriceOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		total := units.Duration(1+rng.Int63n(int64(5*units.Second))) + units.Millisecond
		pts := randomSchedule(rng, 1+rng.Intn(10), 50*units.Millisecond)

		clean := NewSlot(total, 0)
		endClean := playOut(clean, pts, 0)

		// Same schedule, but with redundant probes and re-prices injected
		// between every pair of steps.
		noisy := NewSlot(total, 0)
		now := units.Time(0)
		last := ratePoint{0, 0, 1}
		for _, p := range pts {
			for j := 0; j < rng.Intn(4); j++ {
				mid := now.Add(units.Duration(rng.Int63n(int64(p.at-now) + 1)))
				switch rng.Intn(3) {
				case 0:
					noisy.Remaining(mid)
				case 1:
					noisy.SetRate(mid, last.share, last.penalty) // re-assert
				case 2:
					noisy.Finished(mid)
				}
			}
			now = p.at
			noisy.SetRate(now, p.share, p.penalty)
			last = p
		}
		noisy.SetRate(now, 1, 1)
		rem, ok := noisy.Remaining(now)
		if !ok {
			t.Fatalf("trial %d: full-share slot suspended", trial)
		}
		endNoisy := now.Add(rem)

		// Redundant probes advance the float account in extra steps, so allow
		// one virtual-time unit of accumulated rounding per re-price.
		if d := endClean.Sub(endNoisy); d < -64 || d > 64 {
			t.Fatalf("trial %d: completion depends on accounting call order: clean %v vs noisy %v",
				trial, endClean, endNoisy)
		}
	}
}

// TestSlotPreemptResumeExact: a preemption span (share 0) freezes progress
// exactly — the remaining work before and after the span is identical, and
// the completion shifts by exactly the span length.
func TestSlotPreemptResumeExact(t *testing.T) {
	total := units.Duration(2 * units.Second)
	base := NewSlot(total, 0)
	base.SetRate(0, 0.5, 1)
	remBefore, _ := base.Remaining(units.Time(units.Second))

	s := NewSlot(total, 0)
	s.SetRate(0, 0.5, 1)
	s.SetRate(units.Time(units.Second), 0, 1) // preempt
	if !s.Suspended() {
		t.Fatal("share 0 did not suspend the slot")
	}
	if _, ok := s.Remaining(units.Time(3 * units.Second)); ok {
		t.Fatal("suspended slot reported a completion time")
	}
	s.SetRate(units.Time(3*units.Second), 0.5, 1) // resume after 2s pause
	remAfter, ok := s.Remaining(units.Time(3 * units.Second))
	if !ok {
		t.Fatal("resumed slot still suspended")
	}
	if remAfter != remBefore {
		t.Fatalf("preemption changed remaining work: %v before vs %v after", remBefore, remAfter)
	}
	if got := s.DoneWork(units.Time(3 * units.Second)); got != units.Duration(500*units.Millisecond) {
		t.Fatalf("done work across preemption = %v, want 500ms", got)
	}
}

// TestSlotDeterministicReplay: two slots fed bit-identical schedules produce
// bit-identical accounts — the determinism the DES leans on.
func TestSlotDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		total := units.Duration(1 + rng.Int63n(int64(3*units.Second)))
		pts := randomSchedule(rng, 1+rng.Intn(8), 30*units.Millisecond)
		a, b := NewSlot(total, 0), NewSlot(total, 0)
		ea, eb := playOut(a, pts, 0), playOut(b, pts, 0)
		if ea != eb {
			t.Fatalf("trial %d: identical schedules diverged: %v vs %v", trial, ea, eb)
		}
	}
}

// TestSlotMatchesClosedForm: the slot's remaining work equals the direct
// integral of the rate function.
func TestSlotMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		total := units.Duration(int64(units.Second) + rng.Int63n(int64(20*units.Second)))
		pts := randomSchedule(rng, 1+rng.Intn(10), 200*units.Millisecond)
		s := NewSlot(total, 0)
		served := 0.0
		prev := ratePoint{0, 0, 1}
		now := units.Time(0)
		for _, p := range pts {
			r := prev.share
			if r > 1 {
				r = 1
			}
			pen := prev.penalty
			if pen < 1 {
				pen = 1
			}
			served += float64(p.at.Sub(now)) * (r / pen)
			now = p.at
			s.SetRate(now, p.share, p.penalty)
			prev = p
		}
		if served > float64(total) {
			served = float64(total)
		}
		want := float64(total) - served
		s.SetRate(now, 1, 1)
		rem, ok := s.Remaining(now)
		if !ok {
			t.Fatal("suspended at full share")
		}
		if math.Abs(float64(rem)-want) > math.Ceil(want*1e-12)+1 {
			t.Fatalf("trial %d: remaining %v, closed form %v", trial, rem, units.Duration(want))
		}
	}
}

// TestShareIOPenalty: contention is super-linear in the co-runner count and
// degenerates to fair sharing at γ = 1.
func TestShareIOPenalty(t *testing.T) {
	if got := IOPenalty(1, 1.5); got != 1 {
		t.Fatalf("solo I/O penalty = %v, want 1", got)
	}
	if got := IOPenalty(2, 1); got != 1 {
		t.Fatalf("γ=1 penalty = %v, want 1 (fair sharing)", got)
	}
	p2, p4 := IOPenalty(2, 1.5), IOPenalty(4, 1.5)
	if !(p2 > 1 && p4 > p2) {
		t.Fatalf("penalty not super-linear: 2→%v 4→%v", p2, p4)
	}
	// Aggregate I/O throughput falls as co-runners pile on: n×(1/n)/pen(n).
	if thr2, thr4 := 2*0.5/p2, 4*0.25/p4; !(thr2 < 1 && thr4 < thr2) {
		t.Fatalf("aggregate I/O throughput not decreasing: %v, %v", thr2, thr4)
	}
}

// TestShareMeterIntegrates: the meter's busy integral matches hand-computed
// piecewise spans and clamps shares into [0,1].
func TestShareMeterIntegrates(t *testing.T) {
	m := NewMeter(2)
	m.Set(0, 1, 0)
	m.Set(0, 0.5, units.Time(units.Second))
	m.Set(0, 2.0, units.Time(2*units.Second)) // clamps to 1
	m.Finish(units.Time(4 * units.Second))

	want := units.Duration(units.Second + units.Second/2 + 2*units.Second)
	if got := m.Busy(0); got != want {
		t.Fatalf("busy integral = %v, want %v", got, want)
	}
	if got := m.Fraction(0, units.Time(4*units.Second)); math.Abs(got-0.875) > 1e-12 {
		t.Fatalf("busy fraction = %v, want 0.875", got)
	}
	if got := m.Busy(1); got != 0 {
		t.Fatalf("idle node busy = %v, want 0", got)
	}
}

// TestShareConfigDefaults: nil and zero configs select the documented
// defaults, and negative CoShare disables co-scheduling.
func TestShareConfigDefaults(t *testing.T) {
	var nilCfg *Config
	if nilCfg.SlotCount() != DefaultSlots || nilCfg.Gamma() != DefaultIOGamma {
		t.Fatal("nil config does not select defaults")
	}
	if (&Config{}).CoShareValue() != DefaultCoShare {
		t.Fatal("zero CoShare does not select the default")
	}
	if (&Config{CoShare: -1}).CoShareValue() != 0 {
		t.Fatal("negative CoShare does not disable co-scheduling")
	}
	if (&Config{CoShare: 5}).CoShareValue() != 1 {
		t.Fatal("CoShare not clamped to 1")
	}
}
