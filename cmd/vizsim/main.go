// Command vizsim runs one of the paper's four scenarios (Table II) under one
// or all scheduling policies on the discrete-event cluster simulator and
// prints the resulting metrics — one bar group of Figs. 4–7 per line.
//
// Usage:
//
//	vizsim -scenario 1 -sched OURS
//	vizsim -scenario 4 -sched all -scale 0.1
//
// With -sched all the per-scheduler runs are independent and execute
// concurrently (-parallel, default one worker per CPU); results print in
// the canonical scheduler order either way, and all virtual-time metrics
// are identical to a sequential run. Wall-clock scheduling costs can shift
// under contention — use -parallel 1 for reference numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vizsched/internal/experiments"
	"vizsched/internal/metrics"
	"vizsched/internal/prefetch"
	"vizsched/internal/sim"
	"vizsched/internal/trace"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

func main() {
	scenario := flag.Int("scenario", 1, "scenario 1-4 (Table II)")
	sched := flag.String("sched", "all", "scheduler: FS, SF, FCFS, FCFSU, FCFSL, OURS, or all")
	scale := flag.Float64("scale", 1.0, "workload scale in (0,1]: shrinks run length and job counts")
	jitter := flag.Float64("jitter", experiments.Jitter, "execution-time noise fraction")
	traceCSV := flag.String("trace", "", "write an event trace CSV to this path (single -sched only)")
	ganttSVG := flag.String("gantt", "", "write a node-occupancy Gantt SVG to this path (single -sched only)")
	ganttSeconds := flag.Float64("gantt-window", 5, "Gantt time window in seconds from the start")
	verbose := flag.Bool("v", false, "print latency histograms")
	saveWL := flag.String("save-workload", "", "save the generated workload to this file and exit")
	loadWL := flag.String("load-workload", "", "replay a workload saved with -save-workload")
	faults := flag.Float64("faults", 0,
		"inject a chaos fault mix (crash/slowdisk/stall/flap) at this rate in faults per simulated minute")
	replicas := flag.Int("replicas", 1,
		"replication degree k for OURS: keep hot chunks resident on k nodes and re-home on crash; 1 = paper behaviour")
	parallel := flag.Int("parallel", experiments.DefaultWorkers(),
		"max concurrent runs with -sched all; 1 = sequential (reference scheduling-cost numbers)")
	useQoS := flag.Bool("qos", false,
		"enable the QoS subsystem: per-tenant admission control, DRR fair queuing, SLO-driven degradation")
	usePrefetch := flag.Bool("prefetch", false,
		"enable predictive chunk prefetching for OURS: trajectory-aware cache warming in scheduler idle windows")
	tenants := flag.Int("tenants", 0, "spread users over this many tenants (0: single default tenant)")
	tenantSkew := flag.Float64("skew", 0, "Zipf exponent for tenant demand skew with -tenants; 0 = uniform")
	compositing := flag.String("compositing", "",
		"price compositing per algorithm (dfb, binary-swap, 2-3-swap, direct-send); empty keeps the paper's ceil-log2 model bit-exactly")
	flag.Parse()

	if *scenario < 1 || *scenario > 4 {
		fmt.Fprintln(os.Stderr, "vizsim: -scenario must be 1-4")
		os.Exit(2)
	}
	switch *compositing {
	case "", "dfb", "binary-swap", "2-3-swap", "direct-send":
	default:
		fmt.Fprintf(os.Stderr, "vizsim: unknown -compositing %q\n", *compositing)
		os.Exit(2)
	}
	cfg := workload.Scenario(workload.ScenarioID(*scenario), *scale)
	cfg.Spec.Tenants = *tenants
	cfg.Spec.TenantSkew = *tenantSkew
	wl := workload.Generate(cfg.Spec)
	if *loadWL != "" {
		loaded, err := workload.LoadScheduleFile(*loadWL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vizsim:", err)
			os.Exit(1)
		}
		wl = loaded
	}
	fmt.Printf("scenario %d: %d nodes, %v memory, %d×%v datasets, %.0fs, %d interactive + %d batch jobs\n",
		cfg.ID, cfg.Nodes, cfg.TotalMemory(), cfg.DatasetCount, cfg.DatasetSize,
		wl.Length.Seconds(), wl.InteractiveCount(), wl.BatchCount())
	if *saveWL != "" {
		if err := wl.SaveFile(*saveWL); err != nil {
			fmt.Fprintln(os.Stderr, "vizsim:", err)
			os.Exit(1)
		}
		fmt.Printf("saved workload to %s\n", *saveWL)
		return
	}

	// One fault schedule shared read-only by every run, so schedulers face
	// identical chaos.
	faultSchedule := experiments.FaultSchedule(cfg.Nodes, wl.Length, *faults, int64(cfg.ID)*104729)
	printRecovery := func(rep *metrics.Report) {
		if *faults <= 0 {
			return
		}
		depth, below := rep.Recovery.FramerateDip(experiments.TargetFPS)
		fmt.Printf("       recovery: faults=%d redispatched=%d MTTR=%v dip-depth=%.2ffps dip-time=%v\n",
			rep.Recovery.Faults, rep.Recovery.TasksRedispatched,
			rep.Recovery.MTTR().Std().Round(time.Millisecond), depth, below.Std())
		if rep.Recovery.ChunksRehomed+rep.Recovery.ChunksReseeded > 0 {
			fmt.Printf("       replication: rehomed=%d reseeded=%d svc-MTTR=%v\n",
				rep.Recovery.ChunksRehomed, rep.Recovery.ChunksReseeded,
				rep.Recovery.ServiceMTTR().Std().Round(time.Millisecond))
		}
	}
	printQoS := func(rep *metrics.Report) {
		if rep.QoS == nil {
			return
		}
		q := rep.QoS
		fmt.Printf("       qos: admitted=%d throttled=%d rejected=%d shed=%d peak-level=%d final-level=%d jain=%.3f\n",
			q.Admitted, q.Throttled, q.Rejected, q.Shed, q.MaxLevel, q.FinalLevel, rep.JainFairness())
	}

	printPrefetch := func(rep *metrics.Report) {
		if rep.Prefetch == nil {
			return
		}
		p := rep.Prefetch
		fmt.Printf("       prefetch: issued=%d loaded=%d cancelled=%d hits=%d hidden=%d wasted=%d moved=%v\n",
			p.Issued, p.Loaded, p.Cancelled, p.Hits, p.HiddenHits, p.Wasted, p.BytesMoved)
	}

	run := func(name string) error {
		s, err := experiments.SchedulerByName(name)
		if err != nil {
			return err
		}
		ecfg := sim.ScenarioEngineConfig(cfg, s, *jitter)
		ecfg.Failures = faultSchedule
		ecfg.Replicas = *replicas
		ecfg.Compositing = *compositing
		if *useQoS {
			ecfg.QoS = experiments.SweepQoSConfig()
		}
		if *usePrefetch {
			ecfg.Prefetch = prefetch.DefaultConfig()
		}
		var tl *trace.Log
		if (*traceCSV != "" || *ganttSVG != "") && *sched != "all" {
			tl = trace.New(2_000_000)
			ecfg.Trace = tl
		}
		rep := sim.New(ecfg).Run(wl, 0)
		fmt.Println(rep)
		printRecovery(rep)
		printQoS(rep)
		printPrefetch(rep)
		if *verbose {
			fmt.Printf("interactive latency distribution:\n%s", rep.Interactive.LatencyHist.Render(12))
		}
		if tl != nil {
			if tl.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "vizsim: trace capped, %d events dropped\n", tl.Dropped)
			}
			if *traceCSV != "" {
				f, err := os.Create(*traceCSV)
				if err != nil {
					return err
				}
				if err := tl.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("wrote %s (%d events)\n", *traceCSV, tl.Len())
			}
			if *ganttSVG != "" {
				f, err := os.Create(*ganttSVG)
				if err != nil {
					return err
				}
				to := units.Time(*ganttSeconds * float64(units.Second))
				if err := tl.GanttSVG(f, cfg.Nodes, 0, to); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *ganttSVG)
			}
		}
		return nil
	}
	if *sched == "all" {
		workers := *parallel
		if workers < 1 {
			workers = 1
		}
		// Each scheduler gets a fresh engine; the workload schedule is
		// read-only during Engine.Run, so sharing wl across runs is safe.
		// Compute concurrently, then print in canonical order.
		scheds := experiments.Schedulers()
		reports := make([]*metrics.Report, len(scheds))
		experiments.ForEach(workers, len(scheds), func(i int) {
			ecfg := sim.ScenarioEngineConfig(cfg, scheds[i], *jitter)
			ecfg.Failures = faultSchedule
			ecfg.Replicas = *replicas
			ecfg.Compositing = *compositing
			if *useQoS {
				ecfg.QoS = experiments.SweepQoSConfig()
			}
			if *usePrefetch {
				ecfg.Prefetch = prefetch.DefaultConfig()
			}
			reports[i] = sim.New(ecfg).Run(wl, 0)
		})
		for _, rep := range reports {
			fmt.Println(rep)
			printRecovery(rep)
			printQoS(rep)
			printPrefetch(rep)
			if *verbose {
				fmt.Printf("interactive latency distribution:\n%s", rep.Interactive.LatencyHist.Render(12))
			}
		}
		return
	}
	if err := run(*sched); err != nil {
		fmt.Fprintln(os.Stderr, "vizsim:", err)
		os.Exit(1)
	}
}
