// Command vizclient renders frames through a running vizserver head node:
// a single interactive frame, or an orbit animation submitted as batch jobs.
//
// Usage:
//
//	vizclient -addr localhost:7000 -dataset supernova -o frame.png
//	vizclient -addr localhost:7000 -dataset plume -frames 24 -batch -o anim
//
// With -frames N, output files are named <o>_000.png through <o>_NNN.png.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"vizsched/internal/service"
)

func main() {
	addr := flag.String("addr", "localhost:7000", "head node client address")
	dataset := flag.String("dataset", "", "dataset name (required)")
	size := flag.Int("size", 384, "image size (square)")
	angle := flag.Float64("angle", 0.65, "camera azimuth (radians)")
	elevation := flag.Float64("elevation", 0.35, "camera elevation (radians)")
	dist := flag.Float64("dist", 2.3, "camera distance")
	frames := flag.Int("frames", 1, "number of orbit frames")
	batch := flag.Bool("batch", false, "submit as deferrable batch jobs")
	action := flag.Int("action", 1, "action/session id for scheduling fairness")
	out := flag.String("o", "frame", "output PNG path (basename when -frames > 1)")
	flag.Parse()

	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "vizclient: -dataset is required")
		os.Exit(2)
	}
	client, err := service.DialTCP(*addr)
	if err != nil {
		log.Fatal("vizclient: ", err)
	}
	defer client.Close()

	if *frames <= 1 {
		start := time.Now()
		res, err := client.Render(service.RenderBody{
			Dataset: *dataset, Angle: *angle, Elevation: *elevation, Dist: *dist,
			Width: *size, Height: *size, Batch: *batch, Action: *action,
		})
		if err != nil {
			log.Fatal("vizclient: ", err)
		}
		path := *out
		if path == "frame" {
			path = "frame.png"
		}
		if err := os.WriteFile(path, res.PNG, 0o644); err != nil {
			log.Fatal("vizclient: ", err)
		}
		log.Printf("wrote %s in %v (server %v, %d hits / %d misses)",
			path, time.Since(start).Round(time.Millisecond),
			res.Elapsed.Round(time.Millisecond), res.Hits, res.Misses)
		return
	}

	// Orbit animation: pipeline all frames, then collect in order.
	type pending struct {
		ch   <-chan service.Outcome
		path string
	}
	var queue []pending
	for f := 0; f < *frames; f++ {
		a := *angle + 2*math.Pi*float64(f)/float64(*frames)
		ch, err := client.RenderAsync(service.RenderBody{
			Dataset: *dataset, Angle: a, Elevation: *elevation, Dist: *dist,
			Width: *size, Height: *size, Batch: *batch, Action: *action,
		})
		if err != nil {
			log.Fatal("vizclient: ", err)
		}
		queue = append(queue, pending{ch: ch, path: fmt.Sprintf("%s_%03d.png", *out, f)})
	}
	start := time.Now()
	for i, p := range queue {
		o := <-p.ch
		if o.Err != nil {
			log.Fatalf("vizclient: frame %d: %v", i, o.Err)
		}
		if err := os.WriteFile(p.path, o.Result.PNG, 0o644); err != nil {
			log.Fatal("vizclient: ", err)
		}
	}
	log.Printf("wrote %d frames in %v", len(queue), time.Since(start).Round(time.Millisecond))
}
