// Command vizload drives a live visualization service with simulated users
// and reports achieved framerates and latencies — the paper's experiment
// shape run against the real rendering stack instead of the cluster
// simulator. By default it stands up an in-process cluster over synthetic
// datasets; point it at a running vizserver head with -addr instead.
//
// Usage:
//
//	vizload -users 3 -workers 4 -duration 10s
//	vizload -addr localhost:7000 -datasets supernova,plume -users 2 -duration 30s
//	vizload -users 8 -tenants 4 -skew 1.5 -qos   # skewed multi-tenant overload
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	"vizsched/internal/experiments"
	"vizsched/internal/qos"
	"vizsched/internal/service"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

type userStats struct {
	tenant    int
	frames    int
	drops     int
	latencies []time.Duration
	err       error
}

// dropped reports whether a render error is a QoS decision (shed, rejected,
// overloaded) rather than a service failure: users keep driving load through
// drops, the way a real viewer outlives a skipped frame.
func dropped(err error) bool {
	msg := err.Error()
	for _, k := range []string{"shed", "reject", "overloaded", "superseded"} {
		if strings.Contains(msg, k) {
			return true
		}
	}
	return false
}

func main() {
	addr := flag.String("addr", "", "existing head node address (empty: in-process cluster)")
	users := flag.Int("users", 3, "concurrent interactive users")
	workers := flag.Int("workers", 4, "rendering workers (in-process mode)")
	schedName := flag.String("sched", "OURS", "scheduler (in-process mode)")
	duration := flag.Duration("duration", 10*time.Second, "how long each user keeps rendering")
	size := flag.Int("size", 128, "image size")
	datasetsFlag := flag.String("datasets", "", "comma-separated dataset names (default: synthetic set)")
	batch := flag.Int("batch", 0, "also submit this many batch frames up front")
	tenants := flag.Int("tenants", 0, "bill users to this many tenants (0: single default tenant)")
	skew := flag.Float64("skew", 0, "Zipf exponent for tenant demand skew; 0 = uniform, tenant 1 hottest")
	useQoS := flag.Bool("qos", false, "enable per-tenant admission control and fair queuing (in-process mode)")
	flag.Parse()

	// Per-user tenant labels, Zipf-skewed like the simulator's workload
	// generator so live runs reproduce the qossweep demand shape.
	sampleTenant := workload.TenantSampler(*tenants, *skew, 7777)

	var datasets []string
	if *datasetsFlag != "" {
		datasets = strings.Split(*datasetsFlag, ",")
	}

	connect := func() *service.Client { // set below per mode
		panic("unset")
	}
	var headStats func() service.StatsSnapshot
	if *addr != "" {
		if len(datasets) == 0 {
			log.Fatal("vizload: -datasets is required with -addr")
		}
		if *useQoS {
			log.Fatal("vizload: -qos configures the in-process head; enable QoS on the remote vizserver instead")
		}
		connect = func() *service.Client {
			c, err := service.DialTCP(*addr)
			if err != nil {
				log.Fatal("vizload: ", err)
			}
			return c
		}
	} else {
		if len(datasets) == 0 {
			datasets = []string{"supernova", "plume", "combustion"}
		}
		dir, err := os.MkdirTemp("", "vizload")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		catalog := service.NewCatalog()
		for _, name := range datasets {
			g := volume.Generate(volume.FieldByName(name), 32, 32, 32)
			m, err := service.WriteDataset(filepath.Join(dir, name), name, g, 3, name)
			if err != nil {
				log.Fatal(err)
			}
			if err := catalog.Add(m); err != nil {
				log.Fatal(err)
			}
		}
		sched, err := experiments.SchedulerByName(*schedName)
		if err != nil {
			log.Fatal("vizload: ", err)
		}
		cluster, err := service.StartClusterWith(sched, catalog, *workers, 256*units.MB, func(h *service.Head) {
			if *useQoS {
				h.QoS = qos.DefaultConfig()
			}
		})
		if err != nil {
			log.Fatal("vizload: ", err)
		}
		defer cluster.Stop()
		connect = cluster.Connect
		headStats = cluster.Head.Stats
		fmt.Printf("in-process cluster: %d workers, %s scheduling, qos %v, datasets %v\n",
			*workers, sched.Name(), *useQoS, datasets)
	}

	// Optional batch pressure.
	if *batch > 0 {
		bc := connect()
		defer bc.Close()
		for f := 0; f < *batch; f++ {
			if _, err := bc.RenderAsync(service.RenderBody{
				Dataset: datasets[f%len(datasets)],
				Angle:   float64(f) * 0.26, Dist: 2.5,
				Width: *size, Height: *size,
				Batch: true, Action: 1000,
				Tenant: int(sampleTenant()),
			}); err != nil {
				log.Fatal("vizload: ", err)
			}
		}
		fmt.Printf("submitted %d batch frames\n", *batch)
	}

	stats := make([]userStats, *users)
	var wg sync.WaitGroup
	start := time.Now()
	for u := 0; u < *users; u++ {
		u := u
		stats[u].tenant = int(sampleTenant())
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := connect()
			defer client.Close()
			ds := datasets[u%len(datasets)]
			angle := 0.3 * float64(u)
			for time.Since(start) < *duration {
				t0 := time.Now()
				_, err := client.Render(service.RenderBody{
					Dataset: ds,
					Angle:   angle, Elevation: 0.3, Dist: 2.4,
					Width: *size, Height: *size,
					Action: u + 1,
					Tenant: stats[u].tenant,
				})
				if err != nil {
					if dropped(err) {
						stats[u].drops++
						continue
					}
					stats[u].err = err
					return
				}
				stats[u].frames++
				stats[u].latencies = append(stats[u].latencies, time.Since(t0))
				angle += 2 * math.Pi / 64
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("\n%-6s %7s %8s %7s %8s %10s %10s %10s\n",
		"user", "tenant", "frames", "drops", "fps", "p50", "p95", "max")
	for u := range stats {
		s := &stats[u]
		if s.err != nil {
			fmt.Printf("user%-2d failed: %v\n", u, s.err)
			continue
		}
		slices.Sort(s.latencies)
		pct := func(q float64) time.Duration {
			if len(s.latencies) == 0 {
				return 0
			}
			return s.latencies[int(q*float64(len(s.latencies)-1))]
		}
		fmt.Printf("user%-2d %7d %8d %7d %8.2f %10v %10v %10v\n",
			u, s.tenant, s.frames, s.drops, float64(s.frames)/elapsed.Seconds(),
			pct(0.5).Round(time.Millisecond), pct(0.95).Round(time.Millisecond),
			pct(1).Round(time.Millisecond))
	}

	if headStats != nil {
		if snap := headStats(); snap.QoS != nil {
			q := snap.QoS
			fmt.Printf("\nqos: level %s (peak %d, %d transitions), throttled %d, rejected %d, shed %d, jain %.3f\n",
				q.LevelName, q.MaxLevel, q.LevelChanges, q.JobsThrottled, q.JobsRejected, snap.JobsShed, q.Jain)
			for _, ts := range q.Tenants {
				fmt.Printf("  tenant %-2d issued %5d admitted %5d throttled %5d rejected %5d shed %5d completed %5d p95 %6.1fms\n",
					ts.Tenant, ts.Issued, ts.Admitted, ts.Throttled, ts.Rejected, ts.Shed, ts.Completed, ts.P95Millis)
			}
		}
	}
}
