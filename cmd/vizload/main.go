// Command vizload drives a live visualization service with simulated users
// and reports achieved framerates and latencies — the paper's experiment
// shape run against the real rendering stack instead of the cluster
// simulator. By default it stands up an in-process cluster over synthetic
// datasets; point it at a running vizserver head with -addr instead.
//
// Usage:
//
//	vizload -users 3 -workers 4 -duration 10s
//	vizload -addr localhost:7000 -datasets supernova,plume -users 2 -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	"vizsched/internal/experiments"
	"vizsched/internal/service"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

type userStats struct {
	frames    int
	latencies []time.Duration
	err       error
}

func main() {
	addr := flag.String("addr", "", "existing head node address (empty: in-process cluster)")
	users := flag.Int("users", 3, "concurrent interactive users")
	workers := flag.Int("workers", 4, "rendering workers (in-process mode)")
	schedName := flag.String("sched", "OURS", "scheduler (in-process mode)")
	duration := flag.Duration("duration", 10*time.Second, "how long each user keeps rendering")
	size := flag.Int("size", 128, "image size")
	datasetsFlag := flag.String("datasets", "", "comma-separated dataset names (default: synthetic set)")
	batch := flag.Int("batch", 0, "also submit this many batch frames up front")
	flag.Parse()

	var datasets []string
	if *datasetsFlag != "" {
		datasets = strings.Split(*datasetsFlag, ",")
	}

	connect := func() *service.Client { // set below per mode
		panic("unset")
	}
	if *addr != "" {
		if len(datasets) == 0 {
			log.Fatal("vizload: -datasets is required with -addr")
		}
		connect = func() *service.Client {
			c, err := service.DialTCP(*addr)
			if err != nil {
				log.Fatal("vizload: ", err)
			}
			return c
		}
	} else {
		if len(datasets) == 0 {
			datasets = []string{"supernova", "plume", "combustion"}
		}
		dir, err := os.MkdirTemp("", "vizload")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		catalog := service.NewCatalog()
		for _, name := range datasets {
			g := volume.Generate(volume.FieldByName(name), 32, 32, 32)
			m, err := service.WriteDataset(filepath.Join(dir, name), name, g, 3, name)
			if err != nil {
				log.Fatal(err)
			}
			if err := catalog.Add(m); err != nil {
				log.Fatal(err)
			}
		}
		sched, err := experiments.SchedulerByName(*schedName)
		if err != nil {
			log.Fatal("vizload: ", err)
		}
		cluster, err := service.StartCluster(sched, catalog, *workers, 256*units.MB)
		if err != nil {
			log.Fatal("vizload: ", err)
		}
		defer cluster.Stop()
		connect = cluster.Connect
		fmt.Printf("in-process cluster: %d workers, %s scheduling, datasets %v\n",
			*workers, sched.Name(), datasets)
	}

	// Optional batch pressure.
	if *batch > 0 {
		bc := connect()
		defer bc.Close()
		for f := 0; f < *batch; f++ {
			if _, err := bc.RenderAsync(service.RenderBody{
				Dataset: datasets[f%len(datasets)],
				Angle:   float64(f) * 0.26, Dist: 2.5,
				Width: *size, Height: *size,
				Batch: true, Action: 1000,
			}); err != nil {
				log.Fatal("vizload: ", err)
			}
		}
		fmt.Printf("submitted %d batch frames\n", *batch)
	}

	stats := make([]userStats, *users)
	var wg sync.WaitGroup
	start := time.Now()
	for u := 0; u < *users; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := connect()
			defer client.Close()
			ds := datasets[u%len(datasets)]
			angle := 0.3 * float64(u)
			for time.Since(start) < *duration {
				t0 := time.Now()
				_, err := client.Render(service.RenderBody{
					Dataset: ds,
					Angle:   angle, Elevation: 0.3, Dist: 2.4,
					Width: *size, Height: *size,
					Action: u + 1,
				})
				if err != nil {
					stats[u].err = err
					return
				}
				stats[u].frames++
				stats[u].latencies = append(stats[u].latencies, time.Since(t0))
				angle += 2 * math.Pi / 64
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("\n%-6s %8s %8s %10s %10s %10s\n", "user", "frames", "fps", "p50", "p95", "max")
	for u := range stats {
		s := &stats[u]
		if s.err != nil {
			fmt.Printf("user%-2d failed: %v\n", u, s.err)
			continue
		}
		slices.Sort(s.latencies)
		pct := func(q float64) time.Duration {
			if len(s.latencies) == 0 {
				return 0
			}
			return s.latencies[int(q*float64(len(s.latencies)-1))]
		}
		fmt.Printf("user%-2d %8d %8.2f %10v %10v %10v\n",
			u, s.frames, float64(s.frames)/elapsed.Seconds(),
			pct(0.5).Round(time.Millisecond), pct(0.95).Round(time.Millisecond),
			pct(1).Round(time.Millisecond))
	}
}
