// Command renderimg renders the Fig. 10 analogue images: a synthetic plume,
// combustion, or supernova volume ray-cast to a PNG, optionally through the
// full brick-decompose/composite pipeline to prove it matches a monolithic
// render.
//
// Usage:
//
//	renderimg -name supernova -factor 12 -size 512 -o supernova.png
//	renderimg -name plume -bricks 4 -o plume.png
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"vizsched/internal/compositing"
	"vizsched/internal/img"
	"vizsched/internal/raycast"
	"vizsched/internal/volume"
)

func main() {
	name := flag.String("name", "supernova", "field name: plume, combustion, supernova, or a seed name")
	factor := flag.Int("factor", 16, "downscale factor from the paper's dimensions")
	size := flag.Int("size", 384, "output image size (square)")
	bricks := flag.Int("bricks", 1, "render through N bricks + 2-3-swap compositing instead of monolithic")
	angle := flag.Float64("angle", 0.65, "camera azimuth (radians)")
	elevation := flag.Float64("elevation", 0.35, "camera elevation (radians)")
	dist := flag.Float64("dist", 2.3, "camera distance (unit-cube multiples)")
	shade := flag.Bool("shade", true, "gradient diffuse shading")
	mode := flag.String("mode", "composite", "render mode: composite, mip, or iso")
	iso := flag.Float64("iso", 0.5, "isosurface threshold (mode=iso)")
	out := flag.String("o", "", "output PNG path (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "renderimg: -o is required")
		os.Exit(2)
	}
	dims, err := volume.FigureDims(*name, *factor)
	if err != nil {
		dims = [3]int{64, 64, 64}
	}
	fmt.Printf("generating %s %dx%dx%d...\n", *name, dims[0], dims[1], dims[2])
	g := volume.Generate(volume.FieldByName(*name), dims[0], dims[1], dims[2])
	cam := raycast.NewCamera(*angle, *elevation, *dist)
	tf := raycast.PresetTF(*name)
	opt := raycast.Options{Width: *size, Height: *size, Shading: *shade, Parallel: true, IsoValue: float32(*iso)}
	switch *mode {
	case "composite":
	case "mip":
		opt.Mode = raycast.ModeMIP
	case "iso":
		opt.Mode = raycast.ModeIso
	default:
		fmt.Fprintf(os.Stderr, "renderimg: unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	var final *img.Image
	if *bricks <= 1 {
		fmt.Println("ray casting (monolithic)...")
		final = raycast.RenderFull(g, cam, tf, opt)
	} else {
		fmt.Printf("ray casting %d bricks + 2-3 swap compositing...\n", *bricks)
		boxes := volume.BrickZ(g.Dims, *bricks)
		images := make([]*img.Image, len(boxes))
		depths := make([]float64, len(boxes))
		for i, box := range boxes {
			frag := raycast.RenderBrick(raycast.MakeBrick(g, box), cam, tf, opt)
			images[i] = frag.Image
			depths[i] = frag.Depth
		}
		layers := compositing.ByDepth(images, depths)
		var st compositing.Stats
		final, st = compositing.TwoThreeSwap{}.Composite(layers)
		fmt.Printf("compositing: %d rounds, %d messages, %s moved\n",
			st.Rounds, st.Messages, fmtBytes(st.BytesSent()))
	}
	if err := final.SavePNG(*out); err != nil {
		fmt.Fprintln(os.Stderr, "renderimg:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (mean luminance %.3f)\n", *out, final.Luminance())
}

func fmtBytes(n int64) string {
	if n <= 0 {
		return "0B"
	}
	units := []string{"B", "KB", "MB", "GB"}
	f := float64(n)
	i := 0
	for f >= 1024 && i < len(units)-1 {
		f /= 1024
		i++
	}
	if math.Floor(f) == f {
		return fmt.Sprintf("%.0f%s", f, units[i])
	}
	return fmt.Sprintf("%.1f%s", f, units[i])
}
