// Command vizserver runs one node of the live visualization service over
// TCP — either the head (which accepts worker registrations, then serves
// clients) or a rendering worker.
//
// A three-terminal deployment:
//
//	vizserver -mode head -workers 2 -worker-addr :7001 -client-addr :7000 -sched OURS
//	vizserver -mode worker -connect localhost:7001 -data ./data -mem 256MB
//	vizserver -mode worker -connect localhost:7001 -data ./data -mem 256MB
//
// then render with vizclient -addr localhost:7000 -dataset supernova.
//
// The head needs no dataset payloads, only the manifests (it schedules by
// metadata); workers need the actual dataset directories.
//
// For head failover (§5.10), run the head with -journal and workers with
// -reconnect; after a head crash, a standby replays the snapshot + journal
// and the workers resync into it:
//
//	vizserver -mode head -journal head.wal -workers 2 ...
//	vizserver -mode worker -reconnect -connect localhost:7001 ...
//	# head dies; on the standby machine:
//	vizserver -mode head -standby -journal head.wal -workers 2 ...
//
// -netfaults adds seeded transport-level chaos to a worker's link for
// resilience drills.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"vizsched/internal/autoscale"
	"vizsched/internal/core"
	"vizsched/internal/experiments"
	"vizsched/internal/fracshare"
	"vizsched/internal/hastate"
	"vizsched/internal/journal"
	"vizsched/internal/prefetch"
	"vizsched/internal/qos"
	"vizsched/internal/service"
	"vizsched/internal/transport"
	"vizsched/internal/units"
)

func parseBytes(s string) (units.Bytes, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := units.Bytes(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = units.GB, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = units.MB, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = units.KB, strings.TrimSuffix(s, "KB")
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return units.Bytes(n) * mult, nil
}

// parseFaults parses a -netfaults spec: comma-separated key=value pairs with
// probability keys drop, corrupt, dup, reorder, delay, a maxdelay duration,
// and an integer seed. Example: "drop=0.02,dup=0.05,maxdelay=50ms,seed=42".
func parseFaults(spec string) (transport.FaultConfig, error) {
	cfg := transport.FaultConfig{MaxDelay: 20 * time.Millisecond}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("bad netfaults entry %q (want key=value)", kv)
		}
		switch k {
		case "maxdelay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("bad maxdelay %q: %v", v, err)
			}
			cfg.MaxDelay = d
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("bad seed %q: %v", v, err)
			}
			cfg.Seed = n
		default:
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("bad probability %s=%q", k, v)
			}
			switch k {
			case "drop":
				cfg.Drop = p
			case "corrupt":
				cfg.Corrupt = p
			case "dup":
				cfg.Duplicate = p
			case "reorder":
				cfg.Reorder = p
			case "delay":
				cfg.Delay = p
			default:
				return cfg, fmt.Errorf("unknown netfaults key %q", k)
			}
		}
	}
	return cfg, nil
}

// recoverState replays the snapshot + journal pair at path into the state a
// standby head resumes from.
func recoverState(path string, model core.CostModel) (*hastate.State, error) {
	raw, err := os.ReadFile(path + ".snap")
	if err != nil {
		return nil, fmt.Errorf("reading snapshot: %w", err)
	}
	snap, err := hastate.DecodeSnapshot(raw)
	if err != nil {
		return nil, err
	}
	jf, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening journal: %w", err)
	}
	defer jf.Close()
	recs, err := journal.ReadAll(jf)
	if err != nil {
		return nil, err
	}
	st, err := hastate.Replay(snap, recs, model)
	if err != nil {
		return nil, err
	}
	log.Printf("head: recovered %d jobs from snapshot + %d journal records (clock %v)",
		len(st.Jobs), len(recs), st.At)
	return st, nil
}

func main() {
	mode := flag.String("mode", "head", "head or worker")
	data := flag.String("data", "./data", "directory of dataset directories")
	mem := flag.String("mem", "512MB", "per-worker brick cache quota")
	schedName := flag.String("sched", "OURS", "scheduling policy (head mode)")
	workers := flag.Int("workers", 1, "number of workers to wait for (head mode)")
	shards := flag.Int("shards", 1,
		"head shard count (head mode): run N independent dispatchers over a consistent-hash session partition, sharing a chunk directory; workers are placed round-robin; 1 keeps the single-head behaviour exactly")
	workerAddr := flag.String("worker-addr", ":7001", "worker registration address (head mode)")
	clientAddr := flag.String("client-addr", ":7000", "client service address (head mode)")
	connect := flag.String("connect", "localhost:7001", "head's worker address (worker mode)")
	name := flag.String("name", "", "worker name (worker mode)")
	httpAddr := flag.String("http", "", "serve JSON stats and /metrics on this address (head mode)")
	replicas := flag.Int("replicas", core.DefaultReplicas,
		"replication degree k (head mode): keep hot chunks on k workers and re-home on failure; 1 disables")
	useQoS := flag.Bool("qos", false,
		"enable the QoS subsystem (head mode): per-tenant admission control, fair queuing, SLO-driven degradation")
	useAutoscale := flag.Bool("autoscale", false,
		"enable the elastic autoscaler (head mode): a hysteresis control loop that gracefully drains quiet workers (migrating their queued batch work and pre-warming survivors) and raises the desired-workers gauge under pressure; drained slots rejoin through the ordinary bring-up path")
	fracSlots := flag.Int("fracshare", 0,
		"fractional task slots per worker (head mode, §5.13): workers run up to K tasks concurrently and the head exports the fracshare_* busy-share gauges; 0 keeps serial FIFO execution")
	usePrefetch := flag.Bool("prefetch", false,
		"enable predictive chunk prefetching (head mode, OURS scheduler): warm predicted bricks into worker caches during idle windows")
	compositing := flag.String("compositing", "",
		"fragment assembly (head mode): dfb enables the asynchronous tile-based distributed framebuffer; empty keeps full-frame compositing")
	tile := flag.Int("tile", 0, "dfb tile edge in pixels (head mode); 0 selects the default")
	journalPath := flag.String("journal", "",
		"write-ahead journal path (head mode): log every recoverable mutation to this file and a snapshot to <path>.snap, enabling standby takeover")
	standby := flag.Bool("standby", false,
		"recover head state from the -journal snapshot + log instead of starting fresh (head mode); workers reattach via -reconnect")
	reconnect := flag.Bool("reconnect", false,
		"keep reconnecting across head restarts with exponential backoff, resyncing state with a recovered head (worker mode)")
	retries := flag.Int("retries", 0, "reconnect attempt budget (worker mode); 0 selects the default")
	netfaults := flag.String("netfaults", "",
		"inject seeded network chaos on this worker's link (worker mode), e.g. drop=0.02,dup=0.05,reorder=0.02,corrupt=0.01,delay=0.1,maxdelay=50ms,seed=42")
	flag.Parse()

	catalog := service.NewCatalog()
	if err := catalog.LoadDir(*data); err != nil {
		log.Fatalf("vizserver: loading catalog from %s: %v", *data, err)
	}
	if catalog.Len() == 0 {
		log.Fatalf("vizserver: no datasets found under %s (generate some with volgen)", *data)
	}
	log.Printf("catalog: %v", catalog.Names())

	quota, err := parseBytes(*mem)
	if err != nil {
		log.Fatal("vizserver: ", err)
	}

	switch *mode {
	case "head":
		sched, err := experiments.SchedulerByName(*schedName)
		if err != nil {
			log.Fatal("vizserver: ", err)
		}
		if *shards > 1 {
			// Sharded control plane (§5.11). The journal/standby failover
			// path is per-head: replaying one shard's WAL against tables fed
			// by the cross-shard directory would diverge, so the combination
			// is rejected until shard-local journals are wired.
			if *journalPath != "" || *standby {
				log.Fatal("vizserver: -shards is incompatible with -journal/-standby (shard-local journals are not wired yet)")
			}
			mh, err := service.NewMultiHead(*shards, func() core.Scheduler {
				s, err := experiments.SchedulerByName(*schedName)
				if err != nil {
					log.Fatal("vizserver: ", err)
				}
				return s
			}, catalog, quota, core.DefaultCostModel())
			if err != nil {
				log.Fatal("vizserver: ", err)
			}
			mh.Configure(func(h *service.Head) {
				h.Replicas = *replicas
				if *useQoS {
					h.QoS = qos.DefaultConfig()
				}
				if *usePrefetch {
					h.Prefetch = prefetch.DefaultConfig()
				}
				if *compositing != "" {
					h.Compositing = *compositing
					h.TileSize = *tile
				}
				if *useAutoscale {
					h.Autoscale = autoscale.DefaultConfig()
				}
				if *fracSlots > 0 {
					h.FracShare = &fracshare.Config{Slots: *fracSlots}
				}
			})
			wl, err := transport.ListenTCP(*workerAddr)
			if err != nil {
				log.Fatal("vizserver: ", err)
			}
			log.Printf("head: %d shards waiting for %d workers on %s", *shards, *workers, wl.Addr())
			for i := 0; i < *workers; i++ {
				conn, err := wl.Accept()
				if err != nil {
					log.Fatal("vizserver: ", err)
				}
				s, err := mh.AddWorker(conn)
				if err != nil {
					log.Fatal("vizserver: ", err)
				}
				log.Printf("head: worker %d/%d registered with shard %d", i+1, *workers, s)
			}
			if err := mh.Start(); err != nil {
				log.Fatal("vizserver: ", err)
			}
			// Keep the registration port open: a crashed (or drained) worker
			// redials the plane and the shard index echoed from its original
			// hello ack routes the rejoin to the owning dispatcher.
			go func() {
				for {
					conn, err := wl.Accept()
					if err != nil {
						return
					}
					if err := mh.Rejoin(conn); err != nil {
						log.Printf("head: rejoin: %v", err)
					}
				}
			}()
			if *httpAddr != "" {
				go func() {
					log.Printf("head: shard-0 stats on http://%s/ and /metrics", *httpAddr)
					if err := http.ListenAndServe(*httpAddr, mh.Shard(0).StatsHandler()); err != nil {
						log.Printf("head: stats server: %v", err)
					}
				}()
			}
			cl, err := transport.ListenTCP(*clientAddr)
			if err != nil {
				log.Fatal("vizserver: ", err)
			}
			log.Printf("head: serving clients on %s with %s scheduling across %d shards", cl.Addr(), sched.Name(), *shards)
			mh.ServeClients(cl)
			return
		}
		head := service.NewHead(sched, catalog, quota, core.DefaultCostModel())
		head.Replicas = *replicas
		if *useQoS {
			head.QoS = qos.DefaultConfig()
			log.Printf("head: QoS enabled (admission control + fair queuing + degradation ladder)")
		}
		if *usePrefetch {
			head.Prefetch = prefetch.DefaultConfig()
			log.Printf("head: predictive prefetching enabled (Markov trajectory + frequency prior, governed warming)")
		}
		if *compositing != "" {
			head.Compositing = *compositing
			head.TileSize = *tile
			log.Printf("head: %s compositing enabled (asynchronous per-tile reduction)", *compositing)
		}
		if *useAutoscale {
			head.Autoscale = autoscale.DefaultConfig()
			log.Printf("head: elastic autoscaling enabled (hysteresis control loop, graceful drains, desired-workers gauge)")
		}
		if *fracSlots > 0 {
			head.FracShare = &fracshare.Config{Slots: *fracSlots}
			log.Printf("head: fractional capacity enabled (%d task slots per worker, busy-share gauges)", head.FracShare.SlotCount())
		}
		wl, err := transport.ListenTCP(*workerAddr)
		if err != nil {
			log.Fatal("vizserver: ", err)
		}
		if *standby {
			// Warm-standby takeover (§5.10): rebuild the lost head's tables
			// from the snapshot + journal, then let workers resync in.
			if *journalPath == "" {
				log.Fatal("vizserver: -standby requires -journal")
			}
			st, err := recoverState(*journalPath, core.DefaultCostModel())
			if err != nil {
				log.Fatal("vizserver: ", err)
			}
			jf, err := os.OpenFile(*journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatal("vizserver: ", err)
			}
			head.Journal = journal.NewWriter(jf, 8)
			if err := head.StartRecovered(st); err != nil {
				log.Fatal("vizserver: ", err)
			}
			log.Printf("head: standby takeover complete; waiting for workers to resync on %s", wl.Addr())
		} else {
			if *journalPath != "" {
				jf, err := os.Create(*journalPath)
				if err != nil {
					log.Fatal("vizserver: ", err)
				}
				head.Journal = journal.NewWriter(jf, 8)
			}
			log.Printf("head: waiting for %d workers on %s", *workers, wl.Addr())
			for i := 0; i < *workers; i++ {
				conn, err := wl.Accept()
				if err != nil {
					log.Fatal("vizserver: ", err)
				}
				if err := head.AddWorker(conn); err != nil {
					log.Fatal("vizserver: ", err)
				}
				log.Printf("head: worker %d/%d registered", i+1, *workers)
			}
			if err := head.Start(); err != nil {
				log.Fatal("vizserver: ", err)
			}
			if *journalPath != "" {
				// The genesis snapshot the journal replays on top of. Health
				// records written before the capture replay as guarded no-ops.
				snap, err := head.Snapshot()
				if err != nil {
					log.Fatal("vizserver: ", err)
				}
				raw, err := snap.Encode()
				if err != nil {
					log.Fatal("vizserver: ", err)
				}
				if err := os.WriteFile(*journalPath+".snap", raw, 0o644); err != nil {
					log.Fatal("vizserver: ", err)
				}
				log.Printf("head: journaling to %s (snapshot at %s.snap)", *journalPath, *journalPath)
			}
		}
		// Keep the registration port open: crashed or partitioned workers
		// reattach here (Rejoin), and a standby's workers resync here.
		go func() {
			for {
				conn, err := wl.Accept()
				if err != nil {
					return
				}
				if err := head.Rejoin(conn); err != nil {
					log.Printf("head: rejoin: %v", err)
				}
			}
		}()
		if *httpAddr != "" {
			go func() {
				log.Printf("head: stats on http://%s/ and /metrics", *httpAddr)
				if err := http.ListenAndServe(*httpAddr, head.StatsHandler()); err != nil {
					log.Printf("head: stats server: %v", err)
				}
			}()
		}
		cl, err := transport.ListenTCP(*clientAddr)
		if err != nil {
			log.Fatal("vizserver: ", err)
		}
		log.Printf("head: serving clients on %s with %s scheduling", cl.Addr(), sched.Name())
		head.ServeClients(cl)

	case "worker":
		if *name == "" {
			host, _ := os.Hostname()
			*name = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		var inj *transport.FaultInjector
		if *netfaults != "" {
			cfg, err := parseFaults(*netfaults)
			if err != nil {
				log.Fatal("vizserver: ", err)
			}
			inj = transport.NewFaultInjector(cfg)
			log.Printf("worker %s: network chaos enabled: %s", *name, *netfaults)
		}
		dial := func() (transport.Conn, error) {
			conn, err := transport.DialTCP(*connect)
			if err != nil {
				return nil, err
			}
			if inj != nil {
				conn = inj.Wrap(conn)
			}
			return conn, nil
		}
		w := service.NewWorker(*name, catalog, quota)
		log.Printf("worker %s: serving %v with %v cache", *name, catalog.Names(), quota)
		if *reconnect {
			if err := w.ServeLoop(dial, service.ReconnectConfig{Retries: *retries}); err != nil {
				log.Fatal("vizserver: ", err)
			}
		} else {
			conn, err := dial()
			if err != nil {
				log.Fatal("vizserver: ", err)
			}
			if err := w.Serve(conn); err != nil {
				log.Fatal("vizserver: ", err)
			}
		}
		log.Printf("worker %s: head closed the connection; exiting", *name)

	default:
		log.Fatalf("vizserver: unknown -mode %q", *mode)
	}
}
