// Command vizserver runs one node of the live visualization service over
// TCP — either the head (which accepts worker registrations, then serves
// clients) or a rendering worker.
//
// A three-terminal deployment:
//
//	vizserver -mode head -workers 2 -worker-addr :7001 -client-addr :7000 -sched OURS
//	vizserver -mode worker -connect localhost:7001 -data ./data -mem 256MB
//	vizserver -mode worker -connect localhost:7001 -data ./data -mem 256MB
//
// then render with vizclient -addr localhost:7000 -dataset supernova.
//
// The head needs no dataset payloads, only the manifests (it schedules by
// metadata); workers need the actual dataset directories.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"vizsched/internal/core"
	"vizsched/internal/experiments"
	"vizsched/internal/prefetch"
	"vizsched/internal/qos"
	"vizsched/internal/service"
	"vizsched/internal/transport"
	"vizsched/internal/units"
)

func parseBytes(s string) (units.Bytes, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := units.Bytes(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = units.GB, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = units.MB, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = units.KB, strings.TrimSuffix(s, "KB")
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return units.Bytes(n) * mult, nil
}

func main() {
	mode := flag.String("mode", "head", "head or worker")
	data := flag.String("data", "./data", "directory of dataset directories")
	mem := flag.String("mem", "512MB", "per-worker brick cache quota")
	schedName := flag.String("sched", "OURS", "scheduling policy (head mode)")
	workers := flag.Int("workers", 1, "number of workers to wait for (head mode)")
	workerAddr := flag.String("worker-addr", ":7001", "worker registration address (head mode)")
	clientAddr := flag.String("client-addr", ":7000", "client service address (head mode)")
	connect := flag.String("connect", "localhost:7001", "head's worker address (worker mode)")
	name := flag.String("name", "", "worker name (worker mode)")
	httpAddr := flag.String("http", "", "serve JSON stats and /metrics on this address (head mode)")
	replicas := flag.Int("replicas", core.DefaultReplicas,
		"replication degree k (head mode): keep hot chunks on k workers and re-home on failure; 1 disables")
	useQoS := flag.Bool("qos", false,
		"enable the QoS subsystem (head mode): per-tenant admission control, fair queuing, SLO-driven degradation")
	usePrefetch := flag.Bool("prefetch", false,
		"enable predictive chunk prefetching (head mode, OURS scheduler): warm predicted bricks into worker caches during idle windows")
	compositing := flag.String("compositing", "",
		"fragment assembly (head mode): dfb enables the asynchronous tile-based distributed framebuffer; empty keeps full-frame compositing")
	tile := flag.Int("tile", 0, "dfb tile edge in pixels (head mode); 0 selects the default")
	flag.Parse()

	catalog := service.NewCatalog()
	if err := catalog.LoadDir(*data); err != nil {
		log.Fatalf("vizserver: loading catalog from %s: %v", *data, err)
	}
	if catalog.Len() == 0 {
		log.Fatalf("vizserver: no datasets found under %s (generate some with volgen)", *data)
	}
	log.Printf("catalog: %v", catalog.Names())

	quota, err := parseBytes(*mem)
	if err != nil {
		log.Fatal("vizserver: ", err)
	}

	switch *mode {
	case "head":
		sched, err := experiments.SchedulerByName(*schedName)
		if err != nil {
			log.Fatal("vizserver: ", err)
		}
		head := service.NewHead(sched, catalog, quota, core.DefaultCostModel())
		head.Replicas = *replicas
		if *useQoS {
			head.QoS = qos.DefaultConfig()
			log.Printf("head: QoS enabled (admission control + fair queuing + degradation ladder)")
		}
		if *usePrefetch {
			head.Prefetch = prefetch.DefaultConfig()
			log.Printf("head: predictive prefetching enabled (Markov trajectory + frequency prior, governed warming)")
		}
		if *compositing != "" {
			head.Compositing = *compositing
			head.TileSize = *tile
			log.Printf("head: %s compositing enabled (asynchronous per-tile reduction)", *compositing)
		}
		wl, err := transport.ListenTCP(*workerAddr)
		if err != nil {
			log.Fatal("vizserver: ", err)
		}
		log.Printf("head: waiting for %d workers on %s", *workers, wl.Addr())
		for i := 0; i < *workers; i++ {
			conn, err := wl.Accept()
			if err != nil {
				log.Fatal("vizserver: ", err)
			}
			if err := head.AddWorker(conn); err != nil {
				log.Fatal("vizserver: ", err)
			}
			log.Printf("head: worker %d/%d registered", i+1, *workers)
		}
		if err := head.Start(); err != nil {
			log.Fatal("vizserver: ", err)
		}
		if *httpAddr != "" {
			go func() {
				log.Printf("head: stats on http://%s/ and /metrics", *httpAddr)
				if err := http.ListenAndServe(*httpAddr, head.StatsHandler()); err != nil {
					log.Printf("head: stats server: %v", err)
				}
			}()
		}
		cl, err := transport.ListenTCP(*clientAddr)
		if err != nil {
			log.Fatal("vizserver: ", err)
		}
		log.Printf("head: serving clients on %s with %s scheduling", cl.Addr(), sched.Name())
		head.ServeClients(cl)

	case "worker":
		if *name == "" {
			host, _ := os.Hostname()
			*name = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		conn, err := transport.DialTCP(*connect)
		if err != nil {
			log.Fatal("vizserver: ", err)
		}
		w := service.NewWorker(*name, catalog, quota)
		log.Printf("worker %s: serving %v with %v cache", *name, catalog.Names(), quota)
		if err := w.Serve(conn); err != nil {
			log.Fatal("vizserver: ", err)
		}
		log.Printf("worker %s: head closed the connection; exiting", *name)

	default:
		log.Fatalf("vizserver: unknown -mode %q", *mode)
	}
}
