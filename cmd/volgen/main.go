// Command volgen generates a synthetic volumetric dataset (an analogue of
// the paper's plume / combustion / supernova data, Fig. 10) and writes it as
// a bricked, manifest-described dataset directory the visualization service
// can serve.
//
// Usage:
//
//	volgen -name supernova -factor 16 -chunks 4 -out ./data/supernova
//	volgen -name turbulence-7 -dims 64x64x64 -chunks 8 -out ./data/turb
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vizsched/internal/service"
	"vizsched/internal/volume"
)

func parseDims(s string) ([3]int, error) {
	var d [3]int
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return d, fmt.Errorf("want NXxNYxNZ, got %q", s)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(p, "%d", &d[i]); err != nil || d[i] < 4 {
			return d, fmt.Errorf("bad dimension %q", p)
		}
	}
	return d, nil
}

func main() {
	name := flag.String("name", "supernova", "dataset/field name (plume, combustion, supernova, or any seed name)")
	factor := flag.Int("factor", 16, "downscale factor applied to the paper's Fig. 10 dimensions")
	dimsFlag := flag.String("dims", "", "explicit dimensions NXxNYxNZ (overrides -factor)")
	chunks := flag.Int("chunks", 4, "number of bricks (z-slabs)")
	out := flag.String("out", "", "output dataset directory (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "volgen: -out is required")
		os.Exit(2)
	}
	var dims [3]int
	var err error
	if *dimsFlag != "" {
		dims, err = parseDims(*dimsFlag)
	} else {
		dims, err = volume.FigureDims(*name, *factor)
		if err != nil {
			// Unknown names get a default cube; the field falls back to
			// seeded turbulence.
			dims, err = [3]int{64, 64, 64}, nil
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "volgen:", err)
		os.Exit(2)
	}

	fmt.Printf("generating %s at %dx%dx%d (%d voxels)...\n", *name, dims[0], dims[1], dims[2], dims[0]*dims[1]*dims[2])
	g := volume.Generate(volume.FieldByName(*name), dims[0], dims[1], dims[2])
	m, err := service.WriteDataset(*out, *name, g, *chunks, *name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d bricks (%v total) + manifest to %s\n", len(m.Chunks), m.TotalSize(), *out)
}
