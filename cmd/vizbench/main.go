// Command vizbench regenerates every table and figure of the paper's
// evaluation section in one run: Fig. 2 (pipeline costs), Table II (scenario
// configurations), Figs. 4–7 (per-scheduler scenario results), Table III
// (hit rates and scheduling costs), Fig. 8 (scheduling cost vs user
// actions), and Fig. 9 (OURS vs dataset count).
//
// Usage:
//
//	vizbench                  # everything at full scale (minutes)
//	vizbench -scale 0.1       # everything, 10% workload scale (seconds)
//	vizbench -only fig4,table3
//	vizbench -parallel 1      # sequential: reference scheduling-cost numbers
//
// All simulation runs are independent, so -parallel N (default: one worker
// per CPU) executes them concurrently. Virtual-time results — framerates,
// latencies, hit rates — are bit-identical at any worker count; only the
// wall-clock scheduling-cost columns (Table III, Figs. 8–9) can shift under
// CPU contention, so record reference cost numbers with -parallel 1. See
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vizsched/internal/experiments"
	"vizsched/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale in (0,1]")
	only := flag.String("only", "all",
		"comma-separated subset: fig2, table2, fig4, fig5, fig6, fig7, table3, fig8, fig9, failsweep, replsweep, qossweep, prefsweep, compsweep, hasweep, shardsweep, elasticsweep, fracsweep")
	csvDir := flag.String("csvdir", "", "also write per-figure CSV files into this directory")
	parallel := flag.Int("parallel", experiments.DefaultWorkers(),
		"max concurrent simulation runs; 1 = sequential (reference scheduling-cost numbers)")
	flag.Parse()

	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	if workers > 1 {
		fmt.Fprintf(os.Stderr, "vizbench: running up to %d simulations concurrently; "+
			"wall-clock scheduling-cost columns may reflect CPU contention (use -parallel 1 for reference numbers)\n", workers)
	}

	writeCSV := func(name string, fn func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "vizbench:", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vizbench:", err)
			os.Exit(1)
		}
		if err := fn(f); err != nil {
			fmt.Fprintln(os.Stderr, "vizbench:", err)
			os.Exit(1)
		}
		f.Close()
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		want[strings.TrimSpace(strings.ToLower(k))] = true
	}
	has := func(k string) bool { return want["all"] || want[k] }

	start := time.Now()
	out := os.Stdout
	if has("fig2") {
		experiments.WriteFig2(out)
	}
	if has("table2") {
		experiments.WriteTableII(out, *scale)
	}

	scenarioFig := map[workload.ScenarioID]string{
		workload.Scenario1: "fig4", workload.Scenario2: "fig5",
		workload.Scenario3: "fig6", workload.Scenario4: "fig7",
	}
	needTable3 := has("table3")
	var ids []workload.ScenarioID
	for id := workload.Scenario1; id <= workload.Scenario4; id++ {
		if has(scenarioFig[id]) || needTable3 {
			ids = append(ids, id)
		}
	}
	// Compute every requested (scenario, scheduler) cell first — concurrently
	// when workers > 1 — then print in canonical order, so the output matches
	// a sequential run byte for byte.
	results := experiments.RunScenarios(ids, *scale, workers)
	for _, id := range ids {
		experiments.PrintScenario(out, id, *scale, results[id])
		id := id
		writeCSV(scenarioFig[id]+".csv", func(f *os.File) error {
			return experiments.ScenarioCSV(f, id, results[id])
		})
	}
	if needTable3 {
		experiments.WriteTableIII(out, results)
	}
	if has("fig8") {
		actions := []int{1, 8, 32, 64, 128}
		seconds := int(10 * *scale)
		if seconds < 2 {
			seconds = 2
		}
		points := experiments.Fig8ActionSweepN(actions, seconds, workers)
		experiments.PrintFig8(out, points)
		writeCSV("fig8.csv", func(f *os.File) error { return experiments.Fig8CSV(f, points) })
	}
	if has("fig9") {
		datasets := []int{2, 8, 16, 24, 32}
		seconds := int(10 * *scale)
		if seconds < 2 {
			seconds = 2
		}
		points := experiments.Fig9DatasetSweepN(datasets, seconds, workers)
		experiments.PrintFig9(out, points)
		writeCSV("fig9.csv", func(f *os.File) error { return experiments.Fig9CSV(f, points) })
	}
	if has("failsweep") {
		rates := []float64{0, 1, 2, 4}
		points := experiments.FailureSweepN(rates, *scale, workers)
		experiments.PrintFailureSweep(out, points)
		writeCSV("failsweep.csv", func(f *os.File) error { return experiments.FailureSweepCSV(f, points) })
	}
	if has("replsweep") {
		ks := []int{1, 2, 3}
		rates := []float64{0, 2, 4}
		points := experiments.ReplicaSweepN(ks, rates, *scale, workers)
		experiments.PrintReplicaSweep(out, points)
		writeCSV("replsweep.csv", func(f *os.File) error { return experiments.ReplicaSweepCSV(f, points) })
	}
	if has("qossweep") {
		skews := []float64{0, 1.5}
		loads := []float64{1, 2, 3}
		points := experiments.QoSSweepN(skews, loads, *scale, workers)
		experiments.PrintQoSSweep(out, points)
		writeCSV("qossweep.csv", func(f *os.File) error { return experiments.QoSSweepCSV(f, points) })
	}
	if has("prefsweep") {
		quotas := []int{2, 3}
		loads := []float64{0.5, 1, 2}
		points := experiments.PrefetchSweepN(quotas, loads, workers)
		experiments.PrintPrefetchSweep(out, points)
		writeCSV("prefsweep.csv", func(f *os.File) error { return experiments.PrefetchSweepCSV(f, points) })
	}
	if has("hasweep") {
		outages := []float64{0.05, 0.1, 0.2}
		points := experiments.HASweepN(outages, *scale, workers)
		experiments.PrintHASweep(out, points)
		writeCSV("hasweep.csv", func(f *os.File) error { return experiments.HASweepCSV(f, points) })
	}
	if has("shardsweep") {
		counts := []int{1, 2, 4, 8}
		points := experiments.ShardSweepN(counts, *scale, workers)
		experiments.PrintShardSweep(out, points)
		writeCSV("shardsweep.csv", func(f *os.File) error { return experiments.ShardSweepCSV(f, points) })
	}
	if has("compsweep") {
		points := experiments.CompSweep(workers)
		experiments.PrintCompSweep(out, points)
		writeCSV("compsweep.csv", func(f *os.File) error { return experiments.CompSweepCSV(f, points) })
	}
	if has("elasticsweep") {
		fleets := []int{10, 12}
		points := experiments.ElasticSweepN(fleets, *scale, workers)
		experiments.PrintElasticSweep(out, points)
		writeCSV("elasticsweep.csv", func(f *os.File) error { return experiments.ElasticSweepCSV(f, points) })
	}
	if has("fracsweep") {
		points := experiments.FracSweepN(*scale, workers)
		experiments.PrintFracSweep(out, points)
		writeCSV("fracsweep.csv", func(f *os.File) error { return experiments.FracSweepCSV(f, points) })
	}
	fmt.Fprintf(out, "done. (%v, -parallel %d)\n", time.Since(start).Round(time.Millisecond), workers)
}
