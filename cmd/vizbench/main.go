// Command vizbench regenerates every table and figure of the paper's
// evaluation section in one run: Fig. 2 (pipeline costs), Table II (scenario
// configurations), Figs. 4–7 (per-scheduler scenario results), Table III
// (hit rates and scheduling costs), Fig. 8 (scheduling cost vs user
// actions), and Fig. 9 (OURS vs dataset count).
//
// Usage:
//
//	vizbench                  # everything at full scale (minutes)
//	vizbench -scale 0.1       # everything, 10% workload scale (seconds)
//	vizbench -only fig4,table3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vizsched/internal/experiments"
	"vizsched/internal/metrics"
	"vizsched/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale in (0,1]")
	only := flag.String("only", "all",
		"comma-separated subset: fig2, table2, fig4, fig5, fig6, fig7, table3, fig8, fig9")
	csvDir := flag.String("csvdir", "", "also write per-figure CSV files into this directory")
	flag.Parse()

	writeCSV := func(name string, fn func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "vizbench:", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vizbench:", err)
			os.Exit(1)
		}
		if err := fn(f); err != nil {
			fmt.Fprintln(os.Stderr, "vizbench:", err)
			os.Exit(1)
		}
		f.Close()
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		want[strings.TrimSpace(strings.ToLower(k))] = true
	}
	has := func(k string) bool { return want["all"] || want[k] }

	out := os.Stdout
	if has("fig2") {
		experiments.WriteFig2(out)
	}
	if has("table2") {
		experiments.WriteTableII(out, *scale)
	}

	results := map[workload.ScenarioID][]*metrics.Report{}
	scenarioFig := map[workload.ScenarioID]string{
		workload.Scenario1: "fig4", workload.Scenario2: "fig5",
		workload.Scenario3: "fig6", workload.Scenario4: "fig7",
	}
	needTable3 := has("table3")
	for id := workload.Scenario1; id <= workload.Scenario4; id++ {
		if has(scenarioFig[id]) || needTable3 {
			results[id] = experiments.WriteScenario(out, id, *scale)
			id := id
			writeCSV(scenarioFig[id]+".csv", func(f *os.File) error {
				return experiments.ScenarioCSV(f, id, results[id])
			})
		}
	}
	if needTable3 {
		experiments.WriteTableIII(out, results)
	}
	if has("fig8") {
		actions := []int{1, 8, 32, 64, 128}
		seconds := int(10 * *scale)
		if seconds < 2 {
			seconds = 2
		}
		points := experiments.Fig8ActionSweep(actions, seconds)
		experiments.PrintFig8(out, points)
		writeCSV("fig8.csv", func(f *os.File) error { return experiments.Fig8CSV(f, points) })
	}
	if has("fig9") {
		datasets := []int{2, 8, 16, 24, 32}
		seconds := int(10 * *scale)
		if seconds < 2 {
			seconds = 2
		}
		points := experiments.Fig9DatasetSweep(datasets, seconds)
		experiments.PrintFig9(out, points)
		writeCSV("fig9.csv", func(f *os.File) error { return experiments.Fig9CSV(f, points) })
	}
	fmt.Fprintln(out, "done.")
}
