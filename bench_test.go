// Benchmarks regenerating the paper's evaluation (§VI), one benchmark per
// table or figure, plus ablations over the design choices DESIGN.md calls
// out. Scenario benchmarks run at a reduced workload scale by default so
// `go test -bench=.` completes in minutes on a laptop; set
// VIZSCHED_SCALE=1.0 for the paper's full job counts.
//
// Reported custom metrics: fps (mean per-action framerate, target 33.33),
// hit_pct (data reuse), lat_ms (mean interactive latency),
// sched_ns/job (Table III's scheduling cost).
package vizsched

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"vizsched/internal/cache"
	"vizsched/internal/compositing"
	"vizsched/internal/compositing/dfb"
	"vizsched/internal/core"
	"vizsched/internal/des"
	"vizsched/internal/experiments"
	"vizsched/internal/img"
	"vizsched/internal/metrics"
	"vizsched/internal/raycast"
	"vizsched/internal/service"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// benchScale returns the workload scale for scenario benchmarks.
func benchScale(def float64) float64 {
	if s := os.Getenv("VIZSCHED_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return def
}

// reportScenario attaches the figure's quantities to the benchmark output.
func reportScenario(b *testing.B, rep *metrics.Report) {
	b.ReportMetric(rep.MeanFramerate(), "fps")
	b.ReportMetric(100*rep.HitRate(), "hit_pct")
	b.ReportMetric(rep.Interactive.Latency.Mean().Milliseconds(), "lat_ms")
	b.ReportMetric(float64(rep.AvgSchedCostPerJob().Nanoseconds()), "sched_ns/job")
}

// benchScenario runs one Table II scenario under every scheduler.
func benchScenario(b *testing.B, id workload.ScenarioID, defScale float64) {
	cfg := workload.Scenario(id, benchScale(defScale))
	for _, mk := range experiments.Schedulers() {
		name := mk.Name()
		b.Run(name, func(b *testing.B) {
			var rep *metrics.Report
			for i := 0; i < b.N; i++ {
				sched, err := experiments.SchedulerByName(name)
				if err != nil {
					b.Fatal(err)
				}
				rep = sim.RunScenario(cfg, sched, experiments.Jitter)
			}
			reportScenario(b, rep)
		})
	}
}

// BenchmarkFig4Scenario1 regenerates Fig. 4: six steady users on an 8-node
// cluster with fully cacheable data — pure load balancing.
func BenchmarkFig4Scenario1(b *testing.B) { benchScenario(b, workload.Scenario1, 0.2) }

// BenchmarkFig5Scenario2 regenerates Fig. 5: short user actions plus batch
// jobs with data exceeding memory — locality utilization.
func BenchmarkFig5Scenario2(b *testing.B) { benchScenario(b, workload.Scenario2, 0.2) }

// BenchmarkFig6Scenario3 regenerates Fig. 6: a light-load mixed environment
// on 64 nodes of the ANL system.
func BenchmarkFig6Scenario3(b *testing.B) { benchScenario(b, workload.Scenario3, 0.05) }

// BenchmarkFig7Scenario4 regenerates Fig. 7: 1 TB of data, 423k jobs —
// the heavy-load environment.
func BenchmarkFig7Scenario4(b *testing.B) { benchScenario(b, workload.Scenario4, 0.025) }

// BenchmarkFig2Pipeline measures the real visualization pipeline stages of
// Fig. 2 on the live substrate: brick load from disk, ray casting, and
// image compositing. The orders of magnitude (I/O ≫ render ≈ composite)
// are the paper's motivating observation.
func BenchmarkFig2Pipeline(b *testing.B) {
	dir := b.TempDir()
	g := volume.Generate(volume.Supernova, 64, 64, 64)
	m, err := service.WriteDataset(filepath.Join(dir, "nova"), "nova", g, 4, "supernova")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("io_load_brick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.LoadBrick(i % 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	brick, err := m.LoadBrick(1)
	if err != nil {
		b.Fatal(err)
	}
	cam := raycast.NewCamera(0.6, 0.3, 2.4)
	tf := raycast.PresetTF("supernova")
	opt := raycast.Options{Width: 256, Height: 256}
	b.Run("render_brick", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			raycast.RenderBrick(brick, cam, tf, opt)
		}
	})
	frag := raycast.RenderBrick(brick, cam, tf, opt)
	layers := []*img.Image{frag.Image, frag.Image.Clone(), frag.Image.Clone(), frag.Image.Clone()}
	b.Run("composite_2_3_swap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compositing.TwoThreeSwap{}.Composite(layers)
		}
	})
}

// BenchmarkTableIIISchedulingCost isolates Table III's "avg. cost": the
// wall time of one Schedule invocation over a queue of simultaneous jobs,
// for each policy, on a 64-node head.
func BenchmarkTableIIISchedulingCost(b *testing.B) {
	const nodes = 64
	mkQueue := func(nJobs, chunks int) []*core.Job {
		queue := make([]*core.Job, nJobs)
		for j := range queue {
			job := &core.Job{
				ID:      core.JobID(j + 1),
				Class:   core.Interactive,
				Action:  core.ActionID(j%16 + 1),
				Dataset: volume.DatasetID(j%16 + 1),
			}
			job.Tasks = make([]core.Task, chunks)
			for i := range job.Tasks {
				job.Tasks[i] = core.Task{
					Job: job, Index: i,
					Chunk: volume.ChunkID{Dataset: job.Dataset, Index: i},
					Size:  512 * units.MB,
				}
			}
			job.Remaining = chunks
			queue[j] = job
		}
		return queue
	}
	for _, name := range []string{"FS", "SF", "FCFS", "FCFSU", "FCFSL", "OURS"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			// FCFSU's uniform decomposition yields one task per node — four
			// times the tasks of the Chkmax policies here, which is why the
			// paper finds it the most expensive to schedule.
			chunks := 16
			if name == "FCFSU" {
				chunks = nodes
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sched, _ := experiments.SchedulerByName(name)
				head := core.NewHeadState(nodes, 8*units.GB, core.System2CostModel())
				queue := mkQueue(32, chunks)
				b.StartTimer()
				sched.Schedule(0, queue, head)
			}
			// Per-job cost, Table III's unit.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/32, "ns/job")
		})
	}
}

// BenchmarkFig8ActionsSweep regenerates Fig. 8: scheduling cost per job as
// simultaneous user actions grow, for FCFSU, FCFSL, and OURS.
func BenchmarkFig8ActionsSweep(b *testing.B) {
	for _, actions := range []int{1, 8, 32, 64, 128} {
		b.Run(fmt.Sprintf("actions-%d", actions), func(b *testing.B) {
			var pts []experiments.Fig8Point
			for i := 0; i < b.N; i++ {
				pts = experiments.Fig8ActionSweep([]int{actions}, 2)
			}
			p := pts[0]
			b.ReportMetric(float64(p.Cost["OURS"].Nanoseconds()), "ours_ns/job")
			b.ReportMetric(float64(p.Cost["FCFSL"].Nanoseconds()), "fcfsl_ns/job")
			b.ReportMetric(float64(p.Cost["FCFSU"].Nanoseconds()), "fcfsu_ns/job")
		})
	}
}

// BenchmarkFig9DatasetSweep regenerates Fig. 9: OURS scheduling cost,
// framerate, and latency as the number of 8 GB datasets grows past the
// cluster's memory capacity.
func BenchmarkFig9DatasetSweep(b *testing.B) {
	for _, datasets := range []int{2, 8, 16, 24, 32} {
		b.Run(fmt.Sprintf("datasets-%d", datasets), func(b *testing.B) {
			var pts []experiments.Fig9Point
			for i := 0; i < b.N; i++ {
				pts = experiments.Fig9DatasetSweep([]int{datasets}, 3)
			}
			p := pts[0]
			b.ReportMetric(float64(p.Cost.Nanoseconds()), "sched_ns/job")
			b.ReportMetric(p.Framerate, "fps")
			b.ReportMetric(p.Latency.Milliseconds(), "lat_ms")
		})
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationCompositing compares the sort-last compositing
// algorithms across render-group sizes (supports the choice of 2-3 swap,
// reference [13]).
func BenchmarkAblationCompositing(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	mkLayers := func(n int) []*img.Image {
		layers := make([]*img.Image, n)
		for i := range layers {
			m := img.New(128, 128)
			for p := range m.Pix {
				a := rng.Float32()
				m.Pix[p] = img.RGBA{R: rng.Float32() * a, G: rng.Float32() * a, B: rng.Float32() * a, A: a}
			}
			layers[i] = m
		}
		return layers
	}
	for _, n := range []int{4, 16, 64} {
		layers := mkLayers(n)
		for _, alg := range []compositing.Algorithm{
			compositing.Serial{}, compositing.DirectSend{},
			compositing.BinarySwap{}, compositing.TwoThreeSwap{},
		} {
			b.Run(fmt.Sprintf("%s/layers-%d", alg.Name(), n), func(b *testing.B) {
				var st compositing.Stats
				for i := 0; i < b.N; i++ {
					_, st = alg.Composite(layers)
				}
				b.ReportMetric(float64(st.Messages), "msgs")
				b.ReportMetric(float64(st.PixelsSent), "px_moved")
			})
		}
	}
}

// BenchmarkComposite compares the synchronous swap collectives against the
// asynchronous tile-owner distributed framebuffer (§5.9) at the render-group
// sizes the compsweep experiment uses — the single-machine cost of each
// algorithm's float work and data movement.
func BenchmarkComposite(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	mkLayers := func(n int) []*img.Image {
		layers := make([]*img.Image, n)
		for i := range layers {
			m := img.New(128, 128)
			for p := range m.Pix {
				a := rng.Float32()
				m.Pix[p] = img.RGBA{R: rng.Float32() * a, G: rng.Float32() * a, B: rng.Float32() * a, A: a}
			}
			layers[i] = m
		}
		return layers
	}
	for _, n := range []int{8, 27, 64} {
		layers := mkLayers(n)
		for _, alg := range []compositing.Algorithm{
			compositing.Serial{}, compositing.BinarySwap{},
			compositing.TwoThreeSwap{}, dfb.DFB{},
		} {
			b.Run(fmt.Sprintf("%s/procs-%d", alg.Name(), n), func(b *testing.B) {
				var st compositing.Stats
				for i := 0; i < b.N; i++ {
					_, st = alg.Composite(layers)
				}
				b.ReportMetric(float64(st.Rounds), "rounds")
				b.ReportMetric(float64(st.Messages), "msgs")
				b.ReportMetric(float64(st.PixelsSent), "px_moved")
			})
		}
	}
}

// BenchmarkAblationCycle sweeps the scheduling cycle ω: the paper notes ω
// must be chosen so interactive jobs are scheduled timely with minimal
// overhead.
func BenchmarkAblationCycle(b *testing.B) {
	cfg := workload.Scenario(workload.Scenario2, benchScale(0.1))
	for _, cycle := range []units.Duration{
		2 * units.Millisecond, 10 * units.Millisecond,
		50 * units.Millisecond, 200 * units.Millisecond,
	} {
		b.Run(fmt.Sprintf("omega-%v", cycle), func(b *testing.B) {
			var rep *metrics.Report
			for i := 0; i < b.N; i++ {
				rep = sim.RunScenario(cfg, core.NewLocalityScheduler(cycle), experiments.Jitter)
			}
			reportScenario(b, rep)
		})
	}
}

// BenchmarkAblationIdleGuard toggles the ε idle-time threshold that defers
// non-cached batch work away from interactive nodes.
func BenchmarkAblationIdleGuard(b *testing.B) {
	cfg := workload.Scenario(workload.Scenario2, benchScale(0.1))
	for _, disabled := range []bool{false, true} {
		name := "guarded"
		if disabled {
			name = "unguarded"
		}
		b.Run(name, func(b *testing.B) {
			var rep *metrics.Report
			for i := 0; i < b.N; i++ {
				s := core.NewLocalityScheduler(0)
				s.DisableIdleGuard = disabled
				rep = sim.RunScenario(cfg, s, experiments.Jitter)
			}
			reportScenario(b, rep)
		})
	}
}

// BenchmarkAblationChunkSize sweeps Chkmax (§III-C): too small multiplies
// per-task overheads; too large limits placement freedom.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, chkmax := range []units.Bytes{128 * units.MB, 256 * units.MB, 512 * units.MB, units.GB} {
		b.Run(chkmax.String(), func(b *testing.B) {
			var rep *metrics.Report
			for i := 0; i < b.N; i++ {
				cfg := workload.Scenario(workload.Scenario1, benchScale(0.2))
				cfg.Chkmax = chkmax
				rep = sim.RunScenario(cfg, core.NewLocalityScheduler(0), experiments.Jitter)
			}
			reportScenario(b, rep)
		})
	}
}

// BenchmarkAblationNodeModel compares the paper's serial node model
// (Definition 1) against the future-work extensions: overlapped I/O,
// a two-level GPU-memory hierarchy, and dual-GPU nodes, all under OURS on
// scenario 2.
func BenchmarkAblationNodeModel(b *testing.B) {
	base := workload.Scenario(workload.Scenario2, benchScale(0.1))
	variants := []struct {
		name string
		mod  func(*sim.Config)
	}{
		{"serial", func(*sim.Config) {}},
		{"overlap-io", func(c *sim.Config) { c.OverlapIO = true }},
		{"gpu-cache-1GB", func(c *sim.Config) { c.GPUCache = units.GB }},
		{"dual-gpu", func(c *sim.Config) { c.GPUsPerNode = 2 }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var rep *metrics.Report
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{
					Nodes:     base.Nodes,
					MemQuota:  base.MemQuota,
					Model:     core.System1CostModel(),
					Scheduler: core.NewLocalityScheduler(0),
					Library:   base.Library(volume.MaxChunk{Chkmax: base.Chkmax}),
					Jitter:    experiments.Jitter,
					Seed:      7,
					Preload:   true,
				}
				v.mod(&cfg)
				rep = sim.New(cfg).Run(workload.Generate(base.Spec), 0)
			}
			reportScenario(b, rep)
		})
	}
}

// BenchmarkAblationEviction compares cache replacement policies on a
// memory-pressured scenario 2 under OURS.
func BenchmarkAblationEviction(b *testing.B) {
	base := workload.Scenario(workload.Scenario2, benchScale(0.1))
	for _, p := range []cache.Policy{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyRandom, cache.PolicyLFU} {
		b.Run(p.String(), func(b *testing.B) {
			var rep *metrics.Report
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{
					Nodes:          base.Nodes,
					MemQuota:       base.MemQuota,
					Model:          core.System1CostModel(),
					Scheduler:      core.NewLocalityScheduler(0),
					Library:        base.Library(volume.MaxChunk{Chkmax: base.Chkmax}),
					Jitter:         experiments.Jitter,
					Seed:           7,
					Preload:        true,
					EvictionPolicy: p,
				}
				rep = sim.New(cfg).Run(workload.Generate(base.Spec), 0)
			}
			reportScenario(b, rep)
		})
	}
}

// BenchmarkAblationRaycaster measures the software renderer (the GPU
// substitute) across image sizes, sequential versus parallel.
func BenchmarkAblationRaycaster(b *testing.B) {
	g := volume.Generate(volume.Supernova, 48, 48, 48)
	cam := raycast.NewCamera(0.6, 0.3, 2.4)
	tf := raycast.PresetTF("supernova")
	for _, size := range []int{64, 128, 256} {
		for _, parallel := range []bool{false, true} {
			name := fmt.Sprintf("%dpx/seq", size)
			if parallel {
				name = fmt.Sprintf("%dpx/par", size)
			}
			b.Run(name, func(b *testing.B) {
				opt := raycast.Options{Width: size, Height: size, Parallel: parallel}
				for i := 0; i < b.N; i++ {
					raycast.RenderFull(g, cam, tf, opt)
				}
			})
		}
	}
}

// BenchmarkLiveServiceFrame measures an end-to-end frame through the live
// in-process service (schedule → worker render → 2-3 swap → PNG), warm
// caches — the "hit" row of Fig. 2 on real hardware.
func BenchmarkLiveServiceFrame(b *testing.B) {
	dir := b.TempDir()
	g := volume.Generate(volume.Supernova, 48, 48, 48)
	m, err := service.WriteDataset(filepath.Join(dir, "nova"), "nova", g, 3, "supernova")
	if err != nil {
		b.Fatal(err)
	}
	cat := service.NewCatalog()
	if err := cat.Add(m); err != nil {
		b.Fatal(err)
	}
	cl, err := service.StartCluster(core.NewLocalityScheduler(2*units.Millisecond), cat, 3, 128*units.MB)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()
	req := service.RenderBody{Dataset: "nova", Angle: 0.6, Elevation: 0.3, Dist: 2.4, Width: 128, Height: 128}
	if _, err := client.Render(req); err != nil { // warm caches
		b.Fatal(err)
	}
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Render(req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "frames/s")
}

// BenchmarkSchedulerThroughput is a pure scheduler micro-benchmark: jobs
// scheduled per second through Algorithm 1 at growing queue depths —
// evidence for the paper's claim that scheduling stays far cheaper than
// rendering.
func BenchmarkSchedulerThroughput(b *testing.B) {
	for _, depth := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("queue-%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sched := core.NewLocalityScheduler(0)
				head := core.NewHeadState(64, 8*units.GB, core.System2CostModel())
				queue := make([]*core.Job, depth)
				for j := range queue {
					job := &core.Job{ID: core.JobID(j + 1), Class: core.Interactive,
						Action: core.ActionID(j + 1), Dataset: volume.DatasetID(j%32 + 1)}
					job.Tasks = make([]core.Task, 16)
					for k := range job.Tasks {
						job.Tasks[k] = core.Task{Job: job, Index: k,
							Chunk: volume.ChunkID{Dataset: job.Dataset, Index: k}, Size: 512 * units.MB}
					}
					job.Remaining = 16
					queue[j] = job
				}
				b.StartTimer()
				sched.Schedule(0, queue, head)
			}
		})
	}
}

// BenchmarkDESKernel measures the raw discrete-event kernel under the two
// access patterns the simulator produces: a steady self-perpetuating event
// chain (the node/arrival loops) and a cancel-heavy mix (timeout timers
// that almost always cancel, exercising lazy removal plus reaping). With
// the slab/free-list queue, steady state must report ~0 allocs/op.
func BenchmarkDESKernel(b *testing.B) {
	b.Run("steady-chain", func(b *testing.B) {
		b.ReportAllocs()
		s := des.New()
		n := 0
		var step des.Event
		step = func(sim *des.Simulator) {
			n++
			if n < b.N {
				sim.After(units.Microsecond, step)
			}
		}
		start := time.Now()
		s.After(units.Microsecond, step)
		s.Run(0)
		b.ReportMetric(float64(n)/time.Since(start).Seconds(), "events/s")
	})
	b.Run("cancel-heavy", func(b *testing.B) {
		b.ReportAllocs()
		s := des.New()
		n := 0
		var step des.Event
		step = func(sim *des.Simulator) {
			n++
			// Arm a far-future timeout and a near event; cancel the timeout
			// as the common case (the engine's load/failure timers).
			tmo := sim.After(units.Second, func(*des.Simulator) {})
			if n < b.N {
				sim.After(units.Microsecond, step)
			}
			tmo.Cancel()
		}
		start := time.Now()
		s.After(units.Microsecond, step)
		s.Run(0)
		b.ReportMetric(float64(n)/time.Since(start).Seconds(), "events/s")
	})
}

// BenchmarkAblationTimeSeries compares batch animation (many frames of one
// dataset) against time-varying sweeps (one frame per timestep dataset) —
// the paper's "visualizing time-varying data" use case, which is the worst
// case for locality because every frame needs different chunks.
func BenchmarkAblationTimeSeries(b *testing.B) {
	for _, timeSeries := range []bool{false, true} {
		name := "animation"
		if timeSeries {
			name = "time-series"
		}
		b.Run(name, func(b *testing.B) {
			var rep *metrics.Report
			for i := 0; i < b.N; i++ {
				lib := volume.NewLibrary()
				for d := 1; d <= 12; d++ {
					lib.Add(volume.NewDataset(volume.DatasetID(d), fmt.Sprintf("t%02d", d),
						2*units.GB, volume.MaxChunk{Chkmax: 512 * units.MB}))
				}
				eng := sim.New(sim.Config{
					Nodes:     8,
					MemQuota:  2 * units.GB,
					Model:     core.System1CostModel(),
					Scheduler: core.NewLocalityScheduler(0),
					Library:   lib,
					Jitter:    experiments.Jitter,
					Seed:      3,
					Preload:   true,
				})
				wl := workload.Generate(workload.Spec{
					Length:            units.Time(20 * units.Second),
					Datasets:          12,
					ContinuousActions: 2,
					TargetBatch:       200,
					BatchFramesMin:    50, BatchFramesMax: 50,
					BatchTimeSeries: timeSeries,
					Seed:            9,
				})
				rep = eng.Run(wl, 0)
			}
			reportScenario(b, rep)
			b.ReportMetric(float64(rep.Batch.Completed), "batch_done")
			b.ReportMetric(float64(rep.Loads), "loads")
		})
	}
}
