module vizsched

go 1.22
