// Quickstart: stand up an in-process visualization service (one head node,
// three rendering workers, the paper's locality-aware scheduler), render one
// frame of a synthetic supernova volume, and observe the effect of data
// locality on the second frame.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/service"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func main() {
	// 1. Generate a small synthetic dataset and brick it onto disk, the way
	//    cmd/volgen would.
	dir, err := os.MkdirTemp("", "vizsched-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("generating a 48^3 supernova analogue, bricked into 3 chunks...")
	grid := volume.Generate(volume.Supernova, 48, 48, 48)
	manifest, err := service.WriteDataset(filepath.Join(dir, "supernova"), "supernova", grid, 3, "supernova")
	if err != nil {
		log.Fatal(err)
	}
	catalog := service.NewCatalog()
	if err := catalog.Add(manifest); err != nil {
		log.Fatal(err)
	}

	// 2. Start the service: head + 3 workers over in-process transports,
	//    scheduled by the paper's Algorithm 1 with a 5 ms cycle.
	cluster, err := service.StartCluster(
		core.NewLocalityScheduler(5*units.Millisecond),
		catalog, 3, 128*units.MB,
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	client := cluster.Connect()
	defer client.Close()

	// 3. Render two frames. The first pays chunk loads; the second reuses
	//    every chunk because the scheduler routed same-chunk tasks back to
	//    the nodes that hold them.
	req := service.RenderBody{
		Dataset: "supernova",
		Angle:   0.65, Elevation: 0.35, Dist: 2.3,
		Width: 256, Height: 256,
	}
	for i := 1; i <= 2; i++ {
		start := time.Now()
		res, err := client.Render(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: %v  (%d chunk hits, %d loads)\n",
			i, time.Since(start).Round(time.Millisecond), res.Hits, res.Misses)
		if i == 1 {
			if err := os.WriteFile("quickstart.png", res.PNG, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote quickstart.png")
		}
		req.Angle += 0.2 // the user drags the view
	}
}
