// Failover: the fault-tolerance behaviour of §VI-D and §5.10, demonstrated
// three times — first on the cluster simulator (a 24-second run with a node
// crash and repair mid-flight plus a transient stall, showing recovery
// metrics), then on the live service (a worker connection killed between
// frames, renders continuing on the survivors, and the worker rejoining its
// old slot with a cold cache), and finally a head crash: a journaling head
// dies mid-session, a warm standby replays the snapshot + journal, the
// workers resync onto it, and the animation finishes byte-identical to an
// uninterrupted run with zero re-rendering.
//
//	go run ./examples/failover
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/hastate"
	"vizsched/internal/journal"
	"vizsched/internal/service"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

func simulated() {
	fmt.Println("== simulator: 4 nodes, 3 users, node 1 dies at t=8s, repaired at t=16s ==")
	lib := volume.NewLibrary()
	for i := 1; i <= 3; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), fmt.Sprintf("ds-%d", i),
			units.GB, volume.MaxChunk{Chkmax: 256 * units.MB}))
	}
	eng := sim.New(sim.Config{
		Nodes:     4,
		MemQuota:  2 * units.GB,
		Model:     core.System1CostModel(),
		Scheduler: core.NewLocalityScheduler(0),
		Library:   lib,
		Preload:   true,
		Seed:      1,
		Failures: []sim.Failure{
			{
				At:       units.Time(8 * units.Second),
				Node:     1,
				RepairAt: units.Time(16 * units.Second),
			},
			// A transient stall on node 2: frozen for two seconds, then
			// resumes with caches intact — no reloads, just delay.
			{
				Kind:     sim.FaultStall,
				At:       units.Time(12 * units.Second),
				Node:     2,
				RepairAt: units.Time(14 * units.Second),
			},
		},
	})
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(24 * units.Second),
		Datasets:          3,
		ContinuousActions: 3,
		Seed:              4,
	})
	rep := eng.Run(wl, 0)
	fmt.Printf("completed %d/%d interactive jobs across the crash window\n",
		rep.Interactive.Completed, rep.Interactive.Issued)
	fmt.Printf("mean fps %.2f (33.33 without the crash), %d reloads forced by the lost caches\n",
		rep.MeanFramerate(), rep.Loads)
	depth, below := rep.Recovery.FramerateDip(100.0 / 3.0)
	fmt.Printf("recovery: faults=%d tasks re-dispatched=%d MTTR=%v dip-depth=%.2ffps dip-time=%v\n\n",
		rep.Recovery.Faults, rep.Recovery.TasksRedispatched,
		rep.Recovery.MTTR().Std().Round(time.Millisecond), depth, below.Std())
}

func live() {
	fmt.Println("== live service: 3 workers, one killed mid-session ==")
	dir, err := os.MkdirTemp("", "vizsched-failover")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	g := volume.Generate(volume.Supernova, 32, 32, 32)
	m, err := service.WriteDataset(filepath.Join(dir, "nova"), "nova", g, 3, "supernova")
	if err != nil {
		log.Fatal(err)
	}
	catalog := service.NewCatalog()
	if err := catalog.Add(m); err != nil {
		log.Fatal(err)
	}
	cluster, err := service.StartCluster(core.NewLocalityScheduler(5*units.Millisecond),
		catalog, 3, 128*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	client := cluster.Connect()
	defer client.Close()

	req := service.RenderBody{Dataset: "nova", Angle: 0.5, Elevation: 0.3, Dist: 2.4, Width: 96, Height: 96}
	render := func(frame int) {
		t0 := time.Now()
		res, err := client.Render(req)
		if err != nil {
			log.Fatalf("frame %d: %v", frame, err)
		}
		fmt.Printf("  frame %d: %7v (%d hits / %d loads)\n",
			frame, time.Since(t0).Round(time.Millisecond), res.Hits, res.Misses)
		req.Angle += 0.2
	}
	for frame := 0; frame < 6; frame++ {
		if frame == 3 {
			fmt.Println("  !! killing worker 1's connection")
			cluster.Head.KillWorker(1)
			time.Sleep(20 * time.Millisecond)
		}
		render(frame)
	}
	fmt.Println("all frames delivered despite the lost worker")

	// Bring the worker back: a fresh process reclaims slot 1 with a cold
	// cache, and the head marks it repaired and feeds it work again.
	fmt.Println("  >> restarting worker 1 (rejoin, cold cache)")
	if err := cluster.RejoinWorker(1); err != nil {
		log.Fatal(err)
	}
	for deadline := time.Now().Add(2 * time.Second); cluster.Head.WorkerHealth(1) != core.HealthUp; {
		if time.Now().After(deadline) {
			log.Fatal("worker 1 did not rejoin in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for frame := 6; frame < 9; frame++ {
		render(frame)
	}
	fmt.Println(cluster.Head.Recovery())
}

// headFailover runs the same keyed animation twice: once uninterrupted, once
// with the head crashed after frame 3 and a warm standby taking over from
// the snapshot + journal. The delivered frames are byte-identical and the
// workers render nothing twice.
func headFailover() {
	fmt.Println("\n== head failover: journaling head killed mid-animation, standby takes over ==")
	dir, err := os.MkdirTemp("", "vizsched-headfailover")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	g := volume.Generate(volume.Supernova, 32, 32, 32)
	m, err := service.WriteDataset(filepath.Join(dir, "nova"), "nova", g, 3, "supernova")
	if err != nil {
		log.Fatal(err)
	}
	catalog := service.NewCatalog()
	if err := catalog.Add(m); err != nil {
		log.Fatal(err)
	}
	model := core.DefaultCostModel()
	const frames = 6
	frameReq := func(f int) service.RenderBody {
		return service.RenderBody{
			Dataset: "nova", Angle: 0.2 * float64(f), Elevation: 0.3, Dist: 2.4,
			Width: 64, Height: 64, Key: uint64(f + 1),
		}
	}

	// Reference: the same six frames with no crash.
	ref, err := service.StartCluster(core.NewLocalityScheduler(2*units.Millisecond), catalog, 2, 128*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	refClient := ref.Connect()
	refPNGs := make([][]byte, frames)
	for f := 0; f < frames; f++ {
		res, err := refClient.Render(frameReq(f))
		if err != nil {
			log.Fatal(err)
		}
		refPNGs[f] = res.PNG
	}
	refClient.Close()
	ref.Stop()

	// The HA run: every mutation journaled (batch 1 = durable per record),
	// with a genesis snapshot for the journal to replay on top of.
	var wal bytes.Buffer
	cluster, err := service.StartClusterWith(core.NewLocalityScheduler(2*units.Millisecond),
		catalog, 2, 128*units.MB, func(h *service.Head) {
			h.Journal = journal.NewWriter(&wal, 1)
			h.SuspectAfter = 5 * time.Second
			h.DownAfter = 20 * time.Second
		})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	genesis, err := cluster.Head.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.Connect()
	got := make([][]byte, frames)
	for f := 0; f < 3; f++ {
		res, err := client.Render(frameReq(f))
		if err != nil {
			log.Fatal(err)
		}
		got[f] = res.PNG
		fmt.Printf("  frame %d rendered (key %d)\n", f, f+1)
	}
	tasksBefore := cluster.Worker(0).TasksExecuted() + cluster.Worker(1).TasksExecuted()
	client.Close()

	fmt.Println("  !! killing the head (no shutdown, no sync — connections just die)")
	cluster.Head.Crash()

	recs, err := journal.ReadAll(bytes.NewReader(wal.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	st, err := hastate.Replay(genesis, recs, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  >> standby: replayed %d journal records -> %d recovered jobs\n", len(recs), len(st.Jobs))
	standby := service.NewHead(core.NewLocalityScheduler(2*units.Millisecond), catalog, 128*units.MB, model)
	standby.Logf = func(string, ...any) {}
	standby.SuspectAfter = 5 * time.Second
	standby.DownAfter = 20 * time.Second
	if err := standby.StartRecovered(st); err != nil {
		log.Fatal(err)
	}
	if err := cluster.ResyncTo(standby); err != nil {
		log.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); standby.Recovery().WorkersResynced < 2; {
		if time.Now().After(deadline) {
			log.Fatal("workers did not resync in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("  >> workers resynced: %d (cache re-announcement + retained replay)\n",
		standby.Recovery().WorkersResynced)

	// The client reconnects and re-submits its last pre-crash key: the
	// standby serves it from the retained store, then the animation finishes.
	client2 := cluster.Connect()
	defer client2.Close()
	for f := 2; f < frames; f++ {
		res, err := client2.Render(frameReq(f))
		if err != nil {
			log.Fatal(err)
		}
		got[f] = res.PNG
	}
	tasksAfter := cluster.Worker(0).TasksExecuted() + cluster.Worker(1).TasksExecuted()

	for f := 0; f < frames; f++ {
		if !bytes.Equal(got[f], refPNGs[f]) {
			log.Fatalf("frame %d differs from the uninterrupted run", f)
		}
	}
	fmt.Printf("  all %d frames byte-identical to the uninterrupted run\n", frames)
	fmt.Printf("  tasks executed: %d before crash, %d rendered post-takeover (re-submitted key 3 re-rendered nothing)\n",
		tasksBefore, tasksAfter-tasksBefore)
	fmt.Println(" ", standby.Recovery())
}

func main() {
	simulated()
	live()
	headFailover()
}
