// Remoteviz: a full remote-visualization session over real TCP — the
// deployment shape of cmd/vizserver and cmd/vizclient, wired up inside one
// process so it runs as an example. A head node and three workers talk over
// localhost sockets; an interactive user orbits a combustion volume while a
// batch client submits an animation of a second dataset, and the paper's
// scheduler keeps the interactive session ahead of the batch work.
//
//	go run ./examples/remoteviz
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/service"
	"vizsched/internal/transport"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func main() {
	dir, err := os.MkdirTemp("", "vizsched-remote")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Datasets: a combustion slab for the interactive user, a plume column
	// for the batch animation.
	catalog := service.NewCatalog()
	for name, dims := range map[string][3]int{
		"combustion": {64, 48, 16},
		"plume":      {24, 24, 72},
	} {
		g := volume.Generate(volume.FieldByName(name), dims[0], dims[1], dims[2])
		m, err := service.WriteDataset(filepath.Join(dir, name), name, g, 3, name)
		if err != nil {
			log.Fatal(err)
		}
		if err := catalog.Add(m); err != nil {
			log.Fatal(err)
		}
	}

	// Head over TCP; three workers dial in like remote machines would.
	head := service.NewHead(core.NewLocalityScheduler(5*units.Millisecond), catalog,
		256*units.MB, core.DefaultCostModel())
	head.Logf = func(string, ...any) {}
	workerL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		go func(i int) {
			conn, err := transport.DialTCP(workerL.Addr())
			if err != nil {
				log.Fatal(err)
			}
			w := service.NewWorker(fmt.Sprintf("render-%d", i), catalog, 256*units.MB)
			w.Logf = func(string, ...any) {}
			_ = w.Serve(conn)
		}(i)
	}
	for i := 0; i < 3; i++ {
		conn, err := workerL.Accept()
		if err != nil {
			log.Fatal(err)
		}
		if err := head.AddWorker(conn); err != nil {
			log.Fatal(err)
		}
	}
	if err := head.Start(); err != nil {
		log.Fatal(err)
	}
	clientL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go head.ServeClients(clientL)
	fmt.Printf("service up on %s with 3 workers\n\n", clientL.Addr())

	// Batch client: a 12-frame plume orbit, submitted all at once.
	batch, err := service.DialTCP(clientL.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer batch.Close()
	var animation []<-chan service.Outcome
	for f := 0; f < 12; f++ {
		ch, err := batch.RenderAsync(service.RenderBody{
			Dataset: "plume",
			Angle:   2 * math.Pi * float64(f) / 12, Elevation: 0.15, Dist: 2.6,
			Width: 160, Height: 160,
			Batch: true, Action: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		animation = append(animation, ch)
	}
	fmt.Println("batch: 12-frame plume animation submitted")

	// Interactive user: orbits the combustion volume frame by frame.
	user, err := service.DialTCP(clientL.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer user.Close()
	fmt.Println("interactive: orbiting the combustion volume...")
	for f := 0; f < 6; f++ {
		start := time.Now()
		res, err := user.Render(service.RenderBody{
			Dataset: "combustion",
			Angle:   0.4 + 0.25*float64(f), Elevation: 0.5, Dist: 2.2,
			Width: 224, Height: 224,
			Action: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  frame %d: %7v  (%d hits / %d loads)\n",
			f, time.Since(start).Round(time.Millisecond), res.Hits, res.Misses)
		if f == 0 {
			if err := os.WriteFile("remoteviz_interactive.png", res.PNG, 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Collect the animation (it ran in the gaps the scheduler found).
	done := 0
	for i, ch := range animation {
		o := <-ch
		if o.Err != nil {
			log.Fatalf("batch frame %d: %v", i, o.Err)
		}
		done++
		if i == 0 {
			if err := os.WriteFile("remoteviz_batch.png", o.Result.PNG, 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("batch: all %d animation frames delivered\n", done)
	fmt.Println("wrote remoteviz_interactive.png and remoteviz_batch.png")
}
