// Multiuser: the experiment the paper's introduction motivates — several
// users exploring different large datasets interactively while batch
// animation jobs arrive — run on the discrete-event cluster simulator under
// all six scheduling policies, side by side.
//
// This is a scaled-down Scenario 2 (Table II): an 8-node cluster whose
// memory holds only two thirds of the data, so the scheduler's treatment of
// locality and batch deferral decides whether users get interactive
// framerates.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"time"

	"vizsched/internal/experiments"
	"vizsched/internal/sim"
	"vizsched/internal/workload"
)

func main() {
	cfg := workload.Scenario(workload.Scenario2, 0.25)
	wl := workload.Generate(cfg.Spec)
	fmt.Printf("cluster: %d nodes × %v memory; data: %d × %v (%.0f%% cacheable)\n",
		cfg.Nodes, cfg.MemQuota, cfg.DatasetCount, cfg.DatasetSize,
		100*float64(cfg.TotalMemory())/float64(cfg.TotalData()))
	fmt.Printf("workload: %.0fs, %d interactive frames from short user actions, %d batch frames\n\n",
		cfg.Spec.Length.Seconds(), wl.InteractiveCount(), wl.BatchCount())

	fmt.Printf("%-6s %10s %14s %14s %10s %12s\n",
		"sched", "fps", "interactive", "batch lat", "hit rate", "sched cost")
	for _, sched := range experiments.Schedulers() {
		rep := sim.RunScenario(cfg, sched, experiments.Jitter)
		fmt.Printf("%-6s %10.2f %14v %14v %9.2f%% %12v\n",
			rep.Scheduler,
			rep.MeanFramerate(),
			rep.Interactive.Latency.Mean().Std().Round(time.Millisecond),
			rep.Batch.Latency.Mean().Std().Round(time.Millisecond),
			100*rep.HitRate(),
			rep.AvgSchedCostPerJob().Round(100*time.Nanosecond))
	}
	fmt.Println("\ntarget framerate is 33.33 fps; the paper's OURS policy should be")
	fmt.Println("closest to it with the lowest latencies (compare Fig. 5).")
}
