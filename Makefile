GO ?= go

.PHONY: all build vet test race bench fuzz check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrency: the parallel
# experiment runner, the DES kernel it drives, and the live service.
race:
	$(GO) test -race ./internal/experiments/ ./internal/des/ ./internal/sim/ ./internal/service/ ./internal/raycast/

# Short benchmark smoke: verifies the DES kernel stays allocation-free and
# the scheduler benchmarks still run. Not a performance measurement.
bench:
	$(GO) test -run xxx -bench 'DESKernel|SchedulerThroughput' -benchtime 10000x -benchmem .

# Fuzz smoke, mirroring the CI fuzz-smoke job: short runs over the two
# wire-format decoders. The checked-in corpora replay as regression seeds;
# the -fuzztime budget explores a little fresh territory per invocation.
fuzz:
	$(GO) test -run xxx -fuzz FuzzJournalReadAll -fuzztime 20s ./internal/journal/
	$(GO) test -run xxx -fuzz FuzzFrameDecode -fuzztime 20s ./internal/transport/

check: vet build test race
