GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrency: the parallel
# experiment runner, the DES kernel it drives, and the live service.
race:
	$(GO) test -race ./internal/experiments/ ./internal/des/ ./internal/sim/ ./internal/service/ ./internal/raycast/

# Short benchmark smoke: verifies the DES kernel stays allocation-free and
# the scheduler benchmarks still run. Not a performance measurement.
bench:
	$(GO) test -run xxx -bench 'DESKernel|SchedulerThroughput' -benchtime 10000x -benchmem .

check: vet build test race
