// Package vizsched reproduces "A Job Scheduling Design for Visualization
// Services using GPU Clusters" (Hsu, Wang, Ma, Yu, Chen — IEEE CLUSTER
// 2012): a multi-user parallel volume-rendering service whose head node
// schedules rendering tasks for data locality, plus the cost model, the
// five baseline policies, the cluster simulator that regenerates every
// figure and table of the paper's evaluation, and a live TCP service with a
// real software ray caster.
//
// Start with README.md for the layout, DESIGN.md for the system inventory
// and paper-to-module mapping, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=Fig4 -benchmem .
package vizsched
